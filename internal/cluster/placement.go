package cluster

import "fmt"

// Placement scoring weights. A candidate's score is
//
//	capacityWeight · headroom/capacity  −  loadPenalty · migrations
//	  +  linkWeight · link/bestLink  +  overlapWeight · contentOverlap
//
// so free capacity dominates, each in-flight migration on the host costs a
// quarter of a fully free host, link bandwidth breaks near-ties toward the
// fastest pipe, and — when the moving domain is known — a host that retains
// that domain's disk earns a content-overlap bonus: the migration there is
// both positionally incremental (the vault seeds it) and content-addressed
// (the fingerprint index answers adverts from the retained copy), so it
// ships a fraction of the bytes a cold host would cost. Ties resolve to the
// lexicographically first name, so placement is deterministic for tests and
// reproducible sweeps.
const (
	capacityWeight = 1.0
	loadPenalty    = 0.25
	linkWeight     = 0.1
	overlapWeight  = 0.3
)

// Place picks the best destination for migrating a domain off `from`,
// consulting each member's last-heartbeat load plus the scheduler's live
// reservations. Hosts that are the source, excluded, draining, stale, at
// their concurrency cap, or out of domain capacity are not candidates; with
// no candidate left an error is returned (a queued job retries placement at
// every dispatch). Use PlaceDomain when the moving domain is known — it
// additionally weights content overlap.
func (c *Cluster) Place(from string, exclude ...string) (string, error) {
	return c.PlaceDomain("", from, exclude...)
}

// PlaceDomain is Place with the moving domain named, so candidates that
// retain that domain's disk collect the content-overlap bonus. An empty
// domain degrades to plain Place scoring.
func (c *Cluster) PlaceDomain(domain, from string, exclude ...string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	ex := make(map[string]bool, len(exclude))
	for _, n := range exclude {
		ex[n] = true
	}
	m, err := c.placeLocked(domain, from, ex)
	if err != nil {
		return "", err
	}
	return m.name, nil
}

// placeLocked implements PlaceDomain under c.mu.
func (c *Cluster) placeLocked(domain, from string, exclude map[string]bool) (*member, error) {
	candidates := make([]*member, 0, len(c.members))
	bestLink := 0.0
	for _, m := range c.members {
		if m.name == from || exclude[m.name] || m.draining || !c.aliveLocked(m) {
			continue
		}
		if m.runningIn+m.runningOut >= c.opts.MaxPerHost {
			continue
		}
		// Reserve headroom for migrations already inbound, so a burst of
		// placements spreads instead of stacking on one host.
		if headroom := m.capacity - m.load.Domains - m.runningIn; headroom <= 0 {
			continue
		}
		candidates = append(candidates, m)
		if m.linkBps > bestLink {
			bestLink = m.linkBps
		}
	}
	if len(candidates) == 0 {
		return nil, fmt.Errorf("cluster: no eligible destination for a domain on %q", from)
	}
	var best *member
	bestScore := 0.0
	for _, m := range candidates {
		headroom := m.capacity - m.load.Domains - m.runningIn
		migs := m.runningIn + m.runningOut
		if hb := m.load.ActiveMigrations; hb > migs {
			migs = hb // out-of-band migrations the scheduler didn't start
		}
		score := capacityWeight * float64(headroom) / float64(m.capacity)
		score -= loadPenalty * float64(migs)
		if bestLink > 0 {
			score += linkWeight * m.linkBps / bestLink
		}
		score += overlapWeight * contentOverlap(m, domain)
		if best == nil || score > bestScore || (score == bestScore && m.name < best.name) {
			best, bestScore = m, score
		}
	}
	return best, nil
}

// contentOverlap estimates how much of the moving domain's content a
// candidate already holds, in [0, 1]. A retained copy of the very domain is
// the strongest signal the heartbeat carries (hostd.Load.Retained): the
// vault makes the move incremental and the fingerprint index answers its
// adverts from the retained disk.
func contentOverlap(m *member, domain string) float64 {
	if domain == "" {
		return 0
	}
	for _, name := range m.load.Retained {
		if name == domain {
			return 1
		}
	}
	return 0
}
