// Package cluster is the fleet orchestrator above hostd: it manages a set of
// registered hostd.Machines and decides which domain moves where, when, and
// how fast — the layer the paper frames block-bitmap migration as a building
// block for (evacuating a host for planned maintenance, rebalancing load).
//
// Three pieces compose it:
//
//   - a placement engine (Place) scoring destination hosts by free capacity,
//     current migration load, and link bandwidth;
//   - an admission-controlled scheduler (Submit) with a global pre-copy
//     bandwidth budget shared live via core.RateBudget/BudgetPolicy,
//     per-host and fleet-wide concurrency caps, priority queues, and
//     queued-job cancellation;
//   - fleet operations built on both: Drain evacuates every domain off a
//     host (optionally pre-syncing each domain's divergence so the final
//     cutover ships only the recent write set — the paper's IM applied to
//     planned maintenance), and Rebalance evens domain counts.
//
// Each migration runs on its own loopback listener pair of
// hostd.MigrateOut/ServeOne, so concurrent migrations never share an accept
// queue; the shared resource is the bandwidth budget, re-split across
// in-flight migrations on every paced frame.
package cluster

import (
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/core"
	"bbmig/internal/forecast"
	"bbmig/internal/hostd"
)

// Defaults for Options fields left zero.
const (
	// DefaultMaxPerHost caps concurrent migrations (inbound plus outbound)
	// per host: two, so one machine is never both sides of its whole fleet's
	// churn.
	DefaultMaxPerHost = 2
	// DefaultMaxTotal caps concurrent migrations fleet-wide.
	DefaultMaxTotal = 4
	// DefaultCapacity is the assumed per-host domain capacity when a member
	// registers without one.
	DefaultCapacity = 8
	// DefaultLinkBps is the assumed member link bandwidth when unspecified:
	// the paper testbed's effective Gigabit rate.
	DefaultLinkBps = 49.1e6 * 1.048576
	// DefaultSwarmPeers caps how many peer machines serve sidecar swarm
	// fetches for one migration when Options.Swarm is on and SwarmPeers is
	// zero: three peers, enough to out-aggregate a single source uplink
	// without fanning every migration across the whole fleet.
	DefaultSwarmPeers = 3
	// DefaultForecastHorizon is how far ahead admission looks for a
	// write-rate trough when Options.Forecast is on and ForecastHorizon is
	// zero.
	DefaultForecastHorizon = time.Hour
	// DefaultTroughRatio is the deferral trigger when Options.TroughRatio
	// is zero: a queued low/normal-priority job is pushed into a predicted
	// trough only when the domain's current predicted rate exceeds the
	// trough rate by this factor — anything flatter is not worth waiting
	// for.
	DefaultTroughRatio = 2.0
)

// Options configures a Cluster. The zero value is usable: unlimited
// bandwidth, default caps, members never go stale.
type Options struct {
	// GlobalBandwidth is the fleet-wide pre-copy budget in bytes/second,
	// shared live among in-flight migrations (each one's pacing becomes
	// budget/active, re-read per frame). Zero means unlimited.
	GlobalBandwidth int64

	// MinShare, when positive with a finite GlobalBandwidth, is the
	// admission floor: a migration is not started while doing so would drop
	// the per-migration share below this rate. Zero disables the floor.
	MinShare int64

	// MaxPerHost caps concurrent migrations (inbound + outbound) per host;
	// zero selects DefaultMaxPerHost.
	MaxPerHost int

	// MaxTotal caps concurrent migrations fleet-wide; zero selects
	// DefaultMaxTotal.
	MaxTotal int

	// HeartbeatTTL bounds how stale a member's last heartbeat may be before
	// placement and admission exclude it. Zero means members never go stale
	// (suits in-process fleets whose machines cannot silently die).
	HeartbeatTTL time.Duration

	// BaseConfig is the per-migration core.Config template. Policy, if set,
	// is shared across concurrent migrations and MUST be stateless — use
	// PolicyFactory for anything with mutable state, which also takes
	// precedence when both are set. The scheduler wraps whichever policy a
	// job ends up with in a core.BudgetPolicy drawing from the global
	// budget.
	BaseConfig core.Config

	// PolicyFactory, when non-nil, supplies a fresh inner Policy per
	// migration; it takes precedence over BaseConfig.Policy, because only a
	// factory can satisfy the one-instance-per-migration Policy contract
	// (e.g. func() core.Policy { return &core.AdaptivePolicy{} }). A bare
	// BaseConfig.Policy is shared across concurrent jobs and must therefore
	// be stateless.
	PolicyFactory func() core.Policy

	// Swarm, when true alongside a dedup'd BaseConfig (or job config), fans
	// each migration's want-set across peer machines: the scheduler
	// nominates up to SwarmPeers members by placement's content-overlap
	// data, starts a sidecar swarm-serve session on each (paced from the
	// shared budget), and hands their addresses to the destination. Peers
	// that hold nothing relevant just answer misses — the source's literal
	// fallback covers them — so nomination optimizes bandwidth, never
	// correctness.
	Swarm bool

	// SwarmPeers caps the nominated peers per migration; zero selects
	// DefaultSwarmPeers.
	SwarmPeers int

	// Listen opens the listener a scheduled migration's destination accepts
	// on; the source dials its address. Nil selects loopback TCP ("127.0.0.1:0").
	Listen func() (net.Listener, error)

	// Now is the wall-clock source for heartbeat staleness and makespan
	// accounting; nil selects time.Now. (Migrations themselves run on
	// BaseConfig.Clock as usual.)
	Now func() time.Time

	// Forecast enables per-domain dirty-rate models: every heartbeat's
	// DomainWrites counters become rate observations, and admission defers
	// low/normal-priority jobs into predicted write-rate troughs (see
	// ForecastHorizon and TroughRatio). Evacuate- and high-priority jobs
	// are never deferred — maintenance outranks interference avoidance.
	Forecast bool

	// ForecastConfig tunes the per-domain models when Forecast is on; the
	// zero value selects forecast's defaults.
	ForecastConfig forecast.Config

	// ForecastHorizon bounds how far into the future admission will defer
	// a job to reach a trough; zero selects DefaultForecastHorizon.
	ForecastHorizon time.Duration

	// TroughRatio is the minimum current-rate/trough-rate ratio before
	// admission defers a job; zero selects DefaultTroughRatio.
	TroughRatio float64
}

func (o Options) withDefaults() Options {
	if o.MaxPerHost <= 0 {
		o.MaxPerHost = DefaultMaxPerHost
	}
	if o.MaxTotal <= 0 {
		o.MaxTotal = DefaultMaxTotal
	}
	if o.SwarmPeers <= 0 {
		o.SwarmPeers = DefaultSwarmPeers
	}
	if o.Listen == nil {
		o.Listen = func() (net.Listener, error) { return net.Listen("tcp", "127.0.0.1:0") }
	}
	if o.Now == nil {
		o.Now = time.Now
	}
	if o.ForecastHorizon <= 0 {
		o.ForecastHorizon = DefaultForecastHorizon
	}
	if o.TroughRatio <= 0 {
		o.TroughRatio = DefaultTroughRatio
	}
	return o
}

// member is one registered host and the orchestrator's view of it.
type member struct {
	name     string
	machine  *hostd.Machine
	capacity int
	linkBps  float64
	draining bool
	lastBeat time.Time
	load     hostd.Load

	// scheduler reservations: migrations this cluster is running right now.
	runningIn, runningOut int
}

// Cluster orchestrates migrations across registered machines.
type Cluster struct {
	opts   Options
	budget *core.RateBudget
	start  time.Time // timeline origin for forecast observations

	mu      sync.Mutex
	members map[string]*member
	pending []*Ticket // priority-ordered queue (see scheduler.go)
	running int
	seq     uint64
	models  map[string]*forecast.Model // per-domain dirty-rate models (Forecast on)
}

// New returns an empty cluster.
func New(opts Options) *Cluster {
	opts = opts.withDefaults()
	return &Cluster{
		opts:    opts,
		budget:  core.NewRateBudget(opts.GlobalBandwidth),
		start:   opts.Now(),
		members: make(map[string]*member),
		models:  make(map[string]*forecast.Model),
	}
}

// Budget exposes the cluster's shared bandwidth allocator, so out-of-band
// migrations (or operators retuning the fleet limit via SetTotal) share the
// same pool the scheduler draws from.
func (c *Cluster) Budget() *core.RateBudget { return c.budget }

// MemberOptions parameterizes one Register call.
type MemberOptions struct {
	// Capacity is the most domains this host should carry; zero selects
	// DefaultCapacity.
	Capacity int
	// LinkBps is the modeled (or measured) migration-path bandwidth into
	// this host in bytes/second, a placement tiebreaker; zero selects
	// DefaultLinkBps.
	LinkBps float64
}

// Register adds a machine to the fleet and records its first heartbeat. The
// machine's name must be unique within the cluster.
func (c *Cluster) Register(m *hostd.Machine, opt MemberOptions) error {
	if opt.Capacity <= 0 {
		opt.Capacity = DefaultCapacity
	}
	if opt.LinkBps <= 0 {
		opt.LinkBps = DefaultLinkBps
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.members[m.Name]; dup {
		return fmt.Errorf("cluster: member %q already registered", m.Name)
	}
	mb := &member{name: m.Name, machine: m, capacity: opt.Capacity, linkBps: opt.LinkBps}
	c.heartbeatLocked(mb)
	c.members[m.Name] = mb
	return nil
}

// Heartbeat refreshes a member's load report and liveness timestamp,
// returning the load. Call it periodically for fleets whose machines can
// die (pair with Options.HeartbeatTTL); the scheduler also refreshes both
// endpoints of every migration it completes.
func (c *Cluster) Heartbeat(name string) (hostd.Load, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[name]
	if !ok {
		return hostd.Load{}, fmt.Errorf("cluster: unknown member %q", name)
	}
	c.heartbeatLocked(m)
	return m.load, nil
}

// heartbeatLocked refreshes one member under c.mu and, with Forecast on,
// feeds the per-domain dirty-rate models from the load report's cumulative
// write counters.
func (c *Cluster) heartbeatLocked(m *member) {
	m.load = m.machine.Load()
	m.lastBeat = c.opts.Now()
	if !c.opts.Forecast {
		return
	}
	at := m.lastBeat.Sub(c.start)
	for name, writes := range m.load.DomainWrites {
		mdl := c.models[name]
		if mdl == nil {
			mdl = forecast.NewModel(c.opts.ForecastConfig)
			c.models[name] = mdl
		}
		mdl.ObserveCount(at, writes)
	}
}

// HeartbeatAll refreshes every member's load report (and forecast feed) in
// one pass — the autopilot's per-cycle observation step.
func (c *Cluster) HeartbeatAll() {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, m := range c.members {
		c.heartbeatLocked(m)
	}
}

// DomainModel returns the named domain's dirty-rate model, if Forecast is
// on and at least one heartbeat has reported the domain. The model is live
// and safe for concurrent use.
func (c *Cluster) DomainModel(domain string) (*forecast.Model, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.models[domain]
	return m, ok
}

// PredictMigration forecasts the named domain's pre-copy outcome if a
// migration started now at the budget's current per-migration share: the
// (domain, link-share) convergence question the paper's §IV stop rules
// answer reactively, answered ahead of time. The hot set is unknown at
// this layer, so the prediction conservatively lets writes spread over the
// whole disk.
func (c *Cluster) PredictMigration(domain string) (forecast.Convergence, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	mdl, ok := c.models[domain]
	if !ok {
		return forecast.Convergence{}, fmt.Errorf("cluster: no forecast model for domain %q", domain)
	}
	var blocks int64
	for _, m := range c.members {
		if d, hosted := m.machine.Domain(domain); hosted {
			blocks = int64(d.Disk().NumBlocks())
			break
		}
	}
	if blocks == 0 {
		return forecast.Convergence{}, fmt.Errorf("cluster: domain %q not hosted anywhere", domain)
	}
	share := c.budget.Share()
	rate := float64(share) / blockdev.BlockSize
	if share == clock.Unlimited {
		rate = DefaultLinkBps / blockdev.BlockSize
	}
	return mdl.PredictConvergence(forecast.MigrationParams{
		StartAt:      c.opts.Now().Sub(c.start),
		Blocks:       int(blocks),
		BlocksPerSec: rate,
	}), nil
}

// aliveLocked reports whether a member's heartbeat is fresh enough to
// schedule against.
func (c *Cluster) aliveLocked(m *member) bool {
	if c.opts.HeartbeatTTL <= 0 {
		return true
	}
	return c.opts.Now().Sub(m.lastBeat) <= c.opts.HeartbeatTTL
}

// Undrain returns a previously drained (or mid-drain) host to placement
// eligibility.
func (c *Cluster) Undrain(name string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	m, ok := c.members[name]
	if !ok {
		return fmt.Errorf("cluster: unknown member %q", name)
	}
	m.draining = false
	return nil
}

// MemberStatus is one member's row in a Status report.
type MemberStatus struct {
	// Name is the machine name.
	Name string
	// Capacity is the registered domain capacity.
	Capacity int
	// Load is the member's last-heartbeat load report.
	Load hostd.Load
	// RunningIn and RunningOut count migrations this cluster is running
	// into and out of the host right now.
	RunningIn, RunningOut int
	// Draining marks a host excluded from placement (Drain in progress or
	// completed without Undrain).
	Draining bool
	// Stale marks a host whose heartbeat exceeded Options.HeartbeatTTL.
	Stale bool
	// LinkBps is the registered link bandwidth.
	LinkBps float64
}

// Status is a point-in-time snapshot of the whole cluster.
type Status struct {
	// Members lists every registered host, sorted by name.
	Members []MemberStatus
	// Queued and Running count scheduler jobs in each state.
	Queued, Running int
	// Deferred counts the queued jobs currently held for a NotBefore time
	// (explicit or trough-stamped); they are included in Queued.
	Deferred int
	// ShareBps is the current per-migration bandwidth share
	// (clock.Unlimited when no budget is set).
	ShareBps int64
}

// Status reports the cluster's current membership, queue depth, and budget
// share. Loads are as of each member's last heartbeat.
func (c *Cluster) Status() Status {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Status{Running: c.running, ShareBps: c.budget.Share()}
	now := c.opts.Now()
	for _, t := range c.pending {
		if t.State() == JobQueued {
			st.Queued++
			if nb := t.NotBefore(); !nb.IsZero() && now.Before(nb) {
				st.Deferred++
			}
		}
	}
	names := make([]string, 0, len(c.members))
	for n := range c.members {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		m := c.members[n]
		st.Members = append(st.Members, MemberStatus{
			Name: m.name, Capacity: m.capacity, Load: m.load,
			RunningIn: m.runningIn, RunningOut: m.runningOut,
			Draining: m.draining, Stale: !c.aliveLocked(m), LinkBps: m.linkBps,
		})
	}
	return st
}
