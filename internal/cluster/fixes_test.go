package cluster

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"bbmig/internal/core"
	"bbmig/internal/hostd"
)

// machinesByName indexes a fleet for target-landing assertions.
func machinesByName(ms []*hostd.Machine) map[string]*hostd.Machine {
	byName := make(map[string]*hostd.Machine, len(ms))
	for _, m := range ms {
		byName[m.Name] = m
	}
	return byName
}

// TestRebalanceReportsLandedTargets pins the fix for reading a ticket's
// target before waiting on it. With the fleet cap at one concurrent
// migration, every move after the first is still queued — destination
// unresolved — while the first runs, so a report taken at submit time would
// name no target at all. Every successful move must name the host the
// domain actually landed on.
func TestRebalanceReportsLandedTargets(t *testing.T) {
	c := New(Options{MaxTotal: 1})
	ms := newFleet(t, c, 3, 8)
	for _, d := range []string{"d1", "d2", "d3", "d4", "d5", "d6"} {
		addDomain(t, ms[0], d, 8)
	}
	res, err := c.Rebalance()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Moves) < 2 {
		t.Fatalf("rebalance planned %d moves, want at least 2 so one is queued behind the cap", len(res.Moves))
	}
	byName := machinesByName(ms)
	for _, mv := range res.Moves {
		if mv.Err != nil {
			t.Fatalf("move %s failed: %v", mv.Domain, mv.Err)
		}
		if mv.Target == "" {
			t.Fatalf("move %s reports no target", mv.Domain)
		}
		m := byName[mv.Target]
		if m == nil {
			t.Fatalf("move %s reports unknown target %q", mv.Domain, mv.Target)
		}
		if _, ok := m.Domain(mv.Domain); !ok {
			t.Fatalf("move %s reports target %s, but the domain is not hosted there", mv.Domain, mv.Target)
		}
	}
}

// waitState polls until the ticket reaches the wanted state.
func waitState(t *testing.T, tk *Ticket, want JobState) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for tk.State() != want {
		if time.Now().After(deadline) {
			t.Fatalf("ticket stuck in %v, want %v", tk.State(), want)
		}
		time.Sleep(time.Millisecond)
	}
}

// waitPending polls until the scheduler queue holds a job for the domain.
func waitPending(t *testing.T, c *Cluster, domain string) *Ticket {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		c.mu.Lock()
		for _, p := range c.pending {
			if p.job.Domain == domain {
				c.mu.Unlock()
				return p
			}
		}
		c.mu.Unlock()
		if time.Now().After(deadline) {
			t.Fatalf("no queued job for %q", domain)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestDrainReplacesCanceledMove exercises the drain re-place path for a move
// that dies before dispatch — the case where the failed attempt has no
// target and the re-place exclude list must not ship an empty name. The
// only fleet-wide slot is held by a frozen migration so the drain's move
// sits in the queue, where an operator cancel kills it target-less; the
// drain must then re-place and land the domain, reporting two attempts and
// the real destination.
func TestDrainReplacesCanceledMove(t *testing.T) {
	c := New(Options{MaxTotal: 1, MaxPerHost: 4})
	ms := newFleet(t, c, 3, 8)
	addDomain(t, ms[0], "evac", 8)
	addDomain(t, ms[1], "blocker", 8)

	gate := make(chan struct{})
	hold := core.Config{OnFreeze: func() { <-gate }}
	tb, err := c.Submit(Job{Domain: "blocker", From: "host1", To: "host2", Config: &hold})
	if err != nil {
		t.Fatal(err)
	}
	waitState(t, tb, JobRunning)

	type out struct {
		res *DrainResult
		err error
	}
	done := make(chan out, 1)
	go func() {
		res, err := c.Drain("host0", DrainOptions{})
		done <- out{res, err}
	}()

	tk := waitPending(t, c, "evac")
	if !tk.Cancel() {
		t.Fatal("could not cancel the queued evacuation")
	}
	if tk.Target() != "" {
		t.Fatalf("canceled-before-dispatch move already has target %q", tk.Target())
	}
	close(gate)

	o := <-done
	if o.err != nil {
		t.Fatal(o.err)
	}
	if err := tb.Wait(); err != nil {
		t.Fatalf("blocker migration: %v", err)
	}
	if len(o.res.Moves) != 1 {
		t.Fatalf("drain recorded %d moves, want 1", len(o.res.Moves))
	}
	mv := o.res.Moves[0]
	if mv.Err != nil {
		t.Fatalf("re-placed move failed: %v", mv.Err)
	}
	if mv.Attempts != 2 {
		t.Fatalf("move took %d attempts, want 2 (cancel, then re-place)", mv.Attempts)
	}
	if mv.Target == "" {
		t.Fatal("re-placed move reports no target")
	}
	m := machinesByName(ms)[mv.Target]
	if m == nil {
		t.Fatalf("re-placed move reports unknown target %q", mv.Target)
	}
	if _, ok := m.Domain("evac"); !ok {
		t.Fatalf("evac not hosted on reported target %s", mv.Target)
	}
}

// poisonPolicy stands in for a stateful Options.BaseConfig.Policy that
// PolicyFactory must shadow: any call proves the shared instance leaked
// into a migration.
type poisonPolicy struct {
	core.Policy
	used atomic.Bool
}

// ContinuePreCopy records that the shared policy was driven.
func (p *poisonPolicy) ContinuePreCopy(st core.IterationStat) bool {
	p.used.Store(true)
	return p.Policy.ContinuePreCopy(st)
}

// TestPolicyFactoryShadowsSharedPolicy pins the jobConfig fix: the factory
// supplies every migration's policy even when BaseConfig.Policy is also
// set, because only fresh per-job instances are safe to mutate. The two
// migrations barrier at their freeze points so the factory-minted policies
// demonstrably run concurrently — under -race, a regression that shared the
// stateful base policy would be caught, and the poison instance reports any
// use at all.
func TestPolicyFactoryShadowsSharedPolicy(t *testing.T) {
	poison := &poisonPolicy{Policy: &core.AdaptivePolicy{}}
	var minted atomic.Int32
	var frozen sync.WaitGroup
	frozen.Add(2)
	c := New(Options{
		MaxTotal:   2,
		MaxPerHost: 4,
		BaseConfig: core.Config{
			Policy:   poison,
			OnFreeze: func() { frozen.Done(); frozen.Wait() },
		},
		PolicyFactory: func() core.Policy {
			minted.Add(1)
			return &core.AdaptivePolicy{}
		},
	})
	ms := newFleet(t, c, 4, 4)
	addDomain(t, ms[0], "a", 8)
	addDomain(t, ms[1], "b", 8)
	ta, err := c.Submit(Job{Domain: "a", From: "host0", To: "host2"})
	if err != nil {
		t.Fatal(err)
	}
	tb, err := c.Submit(Job{Domain: "b", From: "host1", To: "host3"})
	if err != nil {
		t.Fatal(err)
	}
	if err := ta.Wait(); err != nil {
		t.Fatal(err)
	}
	if err := tb.Wait(); err != nil {
		t.Fatal(err)
	}
	if got := minted.Load(); got != 2 {
		t.Fatalf("factory minted %d policies for 2 jobs", got)
	}
	if poison.used.Load() {
		t.Fatal("shared BaseConfig.Policy was driven despite PolicyFactory")
	}
}
