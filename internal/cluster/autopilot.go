// The autopilot is the cluster's continuous control loop: where Drain and
// Rebalance are one-shot operator verbs, the autopilot watches heartbeat
// load on a fixed cadence, plans spread-≤1 rebalance moves against the
// fresh snapshot, and trickles them through the scheduler at low priority —
// under the same shared core.RateBudget, deferred into predicted write-rate
// troughs when Options.Forecast is on. It never blocks on its own moves:
// each cycle reaps what settled, re-plans what remains, and skips domains
// already in flight, so a slow migration delays nothing but itself.

package cluster

import (
	"sync"
	"time"
)

// Defaults for AutopilotOptions fields left zero.
const (
	// DefaultAutopilotInterval is the control-loop cadence: long enough
	// that heartbeat costs stay noise, short enough that imbalance is
	// noticed within a few migrations' time.
	DefaultAutopilotInterval = 5 * time.Second
	// DefaultAutopilotMoves caps how many new moves one cycle submits:
	// rebalancing is a background trickle, not a stampede.
	DefaultAutopilotMoves = 2
)

// AutopilotOptions parameterizes a control loop.
type AutopilotOptions struct {
	// Interval is the cycle cadence; zero selects DefaultAutopilotInterval.
	Interval time.Duration
	// MaxMovesPerCycle caps the moves the autopilot keeps in flight (and
	// therefore the new submissions any one cycle makes); zero selects
	// DefaultAutopilotMoves.
	MaxMovesPerCycle int
	// Exclude lists members the autopilot never plans moves from or onto.
	Exclude []string
	// PreSync asks each planned move to run the incremental pre-sync leg
	// before its live migration.
	PreSync bool
}

// AutopilotStats is a point-in-time counter snapshot of one autopilot.
type AutopilotStats struct {
	// Cycles counts completed control-loop iterations.
	Cycles int
	// Planned counts moves the rebalance planner proposed (pre-cap).
	Planned int
	// Submitted counts jobs actually handed to the scheduler.
	Submitted int
	// Completed and Failed count settled moves by outcome.
	Completed, Failed int
	// InFlight counts submitted moves not yet settled.
	InFlight int
	// Deferred counts submitted moves currently parked on a NotBefore
	// trough deferral (still InFlight).
	Deferred int
}

// Autopilot is a running control loop created by StartAutopilot.
type Autopilot struct {
	c    *Cluster
	opts AutopilotOptions
	stop chan struct{}
	wg   sync.WaitGroup

	mu       sync.Mutex
	stats    AutopilotStats
	inflight map[string]*Ticket // domain -> unsettled move
}

// StartAutopilot launches the continuous rebalance control loop and returns
// its handle. Multiple autopilots on one cluster are pointless but safe —
// the scheduler's admission control is the serialization point. Stop the
// loop with Autopilot.Stop.
func (c *Cluster) StartAutopilot(opts AutopilotOptions) *Autopilot {
	if opts.Interval <= 0 {
		opts.Interval = DefaultAutopilotInterval
	}
	if opts.MaxMovesPerCycle <= 0 {
		opts.MaxMovesPerCycle = DefaultAutopilotMoves
	}
	a := &Autopilot{
		c:        c,
		opts:     opts,
		stop:     make(chan struct{}),
		inflight: make(map[string]*Ticket),
	}
	a.wg.Add(1)
	go a.run()
	return a
}

// run is the loop: observe (heartbeats), reap, plan, act — every interval.
func (a *Autopilot) run() {
	defer a.wg.Done()
	ticker := time.NewTicker(a.opts.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-a.stop:
			return
		case <-ticker.C:
			a.cycle()
		}
	}
}

// cycle runs one control iteration.
func (a *Autopilot) cycle() {
	a.c.HeartbeatAll()
	a.reap()

	ex := make(map[string]bool, len(a.opts.Exclude))
	for _, n := range a.opts.Exclude {
		ex[n] = true
	}
	a.mu.Lock()
	skip := make(map[string]bool, len(a.inflight))
	for d := range a.inflight {
		skip[d] = true
	}
	budget := a.opts.MaxMovesPerCycle - len(a.inflight)
	a.mu.Unlock()

	plan := a.c.rebalancePlan(ex, skip)

	a.mu.Lock()
	a.stats.Cycles++
	a.stats.Planned += len(plan)
	a.mu.Unlock()

	for _, p := range plan {
		if budget <= 0 {
			break
		}
		// Destination unpinned: by the time a trough-deferred move starts,
		// the planner's emptiest host may no longer be — placement re-scores
		// at dispatch with fresher loads, and a full host defers rather than
		// permanently failing the move the way a pinned destination would.
		t, err := a.c.Submit(Job{
			Domain: p.domain, From: p.from,
			Priority: PriorityLow, PreSync: a.opts.PreSync,
		})
		a.mu.Lock()
		if err != nil {
			// Racing drains and operator moves invalidate plans between
			// snapshot and submit; the next cycle re-plans from scratch.
			a.stats.Failed++
		} else {
			a.stats.Submitted++
			a.inflight[p.domain] = t
		}
		a.mu.Unlock()
		budget--
	}
}

// reap folds settled moves into the stats and frees their domains for
// re-planning.
func (a *Autopilot) reap() {
	a.mu.Lock()
	defer a.mu.Unlock()
	for d, t := range a.inflight {
		switch t.State() {
		case JobDone:
			a.stats.Completed++
			delete(a.inflight, d)
		case JobFailed, JobCanceled:
			a.stats.Failed++
			delete(a.inflight, d)
		}
	}
}

// Stats returns a snapshot of the loop's counters.
func (a *Autopilot) Stats() AutopilotStats {
	a.reap()
	a.mu.Lock()
	defer a.mu.Unlock()
	st := a.stats
	st.InFlight = len(a.inflight)
	now := a.c.opts.Now()
	for _, t := range a.inflight {
		if nb := t.NotBefore(); !nb.IsZero() && now.Before(nb) && t.State() == JobQueued {
			st.Deferred++
		}
	}
	return st
}

// Stop ends the control loop and blocks until every in-flight move settles
// (migrations are not abortable mid-flight; still-deferred queued moves are
// canceled rather than waited out). The cluster itself keeps running.
func (a *Autopilot) Stop() {
	close(a.stop)
	a.wg.Wait()

	a.mu.Lock()
	tickets := make([]*Ticket, 0, len(a.inflight))
	for _, t := range a.inflight {
		tickets = append(tickets, t)
	}
	a.mu.Unlock()
	for _, t := range tickets {
		t.Cancel() // settles still-queued (e.g. trough-deferred) moves now
		t.Wait()
	}
	a.reap()
}
