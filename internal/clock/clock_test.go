package clock

import (
	"sync"
	"testing"
	"time"
)

func TestRealMonotonic(t *testing.T) {
	c := NewReal()
	a := c.Now()
	c.Sleep(2 * time.Millisecond)
	b := c.Now()
	if b <= a {
		t.Fatalf("time did not advance: %v -> %v", a, b)
	}
	c.Sleep(-time.Second) // negative sleep is a no-op, must not block or panic
}

func TestVirtualAdvance(t *testing.T) {
	v := NewVirtual()
	if v.Now() != 0 {
		t.Fatal("virtual clock not at zero")
	}
	v.Advance(5 * time.Second)
	if v.Now() != 5*time.Second {
		t.Fatalf("Now = %v", v.Now())
	}
	v.Sleep(time.Second)
	if v.Now() != 6*time.Second {
		t.Fatalf("Now after Sleep = %v", v.Now())
	}
	v.Set(10 * time.Second)
	if v.Now() != 10*time.Second {
		t.Fatalf("Now after Set = %v", v.Now())
	}
}

func TestVirtualPanics(t *testing.T) {
	v := NewVirtual()
	v.Advance(time.Second)
	for name, fn := range map[string]func(){
		"negative-advance": func() { v.Advance(-1) },
		"set-backwards":    func() { v.Set(0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestVirtualConcurrent(t *testing.T) {
	v := NewVirtual()
	var wg sync.WaitGroup
	for i := 0; i < 10; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				v.Advance(time.Millisecond)
			}
		}()
	}
	wg.Wait()
	if v.Now() != time.Second {
		t.Fatalf("Now = %v, want 1s", v.Now())
	}
}

func TestRateLimiterVirtualThroughput(t *testing.T) {
	v := NewVirtual()
	// 1 MB/s, 64KB burst
	rl := NewRateLimiter(v, 1<<20, 64<<10)
	start := v.Now()
	total := 0
	for i := 0; i < 100; i++ {
		rl.Wait(1 << 16) // 64 KiB chunks
		total += 1 << 16
	}
	elapsed := v.Now() - start
	// 100 * 64KiB = 6.25 MiB at 1 MiB/s ≈ 6.25 s (minus the initial burst)
	wantMin := 5 * time.Second
	wantMax := 7 * time.Second
	if elapsed < wantMin || elapsed > wantMax {
		t.Fatalf("transferring %d bytes took %v of virtual time, want ~6.2s", total, elapsed)
	}
}

func TestRateLimiterLargeSingleWait(t *testing.T) {
	v := NewVirtual()
	rl := NewRateLimiter(v, 1000, 100) // 1000 B/s, tiny burst
	rl.Wait(5000)                      // 5x burst: must drain in chunks, ~4.9s
	if got := v.Now(); got < 4*time.Second || got > 6*time.Second {
		t.Fatalf("Wait(5000) advanced %v, want ~4.9s", got)
	}
}

func TestRateLimiterUnlimited(t *testing.T) {
	v := NewVirtual()
	rl := NewRateLimiter(v, Unlimited, 0)
	if d := rl.Wait(1 << 30); d != 0 || v.Now() != 0 {
		t.Fatalf("unlimited limiter waited %v / advanced %v", d, v.Now())
	}
}

func TestRateLimiterZeroAndNegative(t *testing.T) {
	v := NewVirtual()
	rl := NewRateLimiter(v, 100, 10)
	if rl.Wait(0) != 0 || rl.Wait(-5) != 0 {
		t.Fatal("zero/negative Wait should be free")
	}
}

func TestRateLimiterSetRate(t *testing.T) {
	v := NewVirtual()
	rl := NewRateLimiter(v, 1000, 1)
	if rl.Rate() != 1000 {
		t.Fatalf("Rate = %d", rl.Rate())
	}
	rl.Wait(1000) // drains, ~1s
	t0 := v.Now()
	rl.SetRate(10000)
	rl.Wait(1000) // at 10x rate, ~0.1s
	d := v.Now() - t0
	if d > 200*time.Millisecond {
		t.Fatalf("after SetRate, Wait(1000) took %v", d)
	}
}

func TestRateLimiterBadRatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	NewRateLimiter(NewVirtual(), 0, 0)
}

func TestRateLimiterRealClockSmoke(t *testing.T) {
	// Small real-time smoke test: 1 MB at 10 MB/s ≈ 100 ms.
	c := NewReal()
	rl := NewRateLimiter(c, 10<<20, 64<<10)
	start := time.Now()
	for i := 0; i < 16; i++ {
		rl.Wait(64 << 10)
	}
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("1 MiB at 10 MiB/s took %v", elapsed)
	}
}
