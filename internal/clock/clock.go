// Package clock abstracts time for the migration engine so the same
// algorithms run against the wall clock (real TCP migrations, integration
// tests) and against a virtual clock (paper-scale experiments that replay an
// ~800-second migration of a 39 070 MB disk in milliseconds of wall time).
//
// It also provides the token-bucket RateLimiter that implements the paper's
// migration bandwidth cap ("we just simply limit the network bandwidth used
// by the migration process in the pre-copy phase", §VI-C-3).
package clock

import (
	"fmt"
	"sync"
	"time"
)

// Clock supplies monotonic time since an arbitrary origin and a way to wait.
type Clock interface {
	// Now returns the time elapsed since the clock's origin.
	Now() time.Duration
	// Sleep blocks the caller for d. On a virtual clock this advances
	// simulated time instead of waiting.
	Sleep(d time.Duration)
}

// Real is a Clock backed by the wall clock. The zero value is not usable;
// construct with NewReal.
type Real struct {
	origin time.Time
}

// NewReal returns a wall Clock whose origin is now.
func NewReal() *Real { return &Real{origin: time.Now()} }

// Now implements Clock.
func (r *Real) Now() time.Duration { return time.Since(r.origin) }

// Sleep implements Clock.
func (r *Real) Sleep(d time.Duration) {
	if d > 0 {
		time.Sleep(d)
	}
}

// Virtual is a manually advanced Clock for discrete-event simulation. Sleep
// advances the clock immediately — the sim engine is single-logical-threaded
// per simulated actor and accounts for concurrency arithmetically, so a
// Sleep(d) simply means "d of simulated time passed here".
//
// Virtual is safe for concurrent use, which the paper-scale simulator relies
// on when sampling throughput from a second goroutine.
type Virtual struct {
	mu  sync.Mutex
	now time.Duration
}

// NewVirtual returns a Virtual clock at time zero.
func NewVirtual() *Virtual { return &Virtual{} }

// Now implements Clock.
func (v *Virtual) Now() time.Duration {
	v.mu.Lock()
	defer v.mu.Unlock()
	return v.now
}

// Sleep implements Clock by advancing the virtual time.
func (v *Virtual) Sleep(d time.Duration) { v.Advance(d) }

// Advance moves the virtual clock forward by d. Negative d panics: simulated
// time, like real time, never runs backwards.
func (v *Virtual) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("clock: negative advance %v", d))
	}
	v.mu.Lock()
	v.now += d
	v.mu.Unlock()
}

// Set jumps the clock to t, which must not be in the past.
func (v *Virtual) Set(t time.Duration) {
	v.mu.Lock()
	defer v.mu.Unlock()
	if t < v.now {
		panic(fmt.Sprintf("clock: set %v before now %v", t, v.now))
	}
	v.now = t
}
