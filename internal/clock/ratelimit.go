package clock

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// Unlimited disables rate limiting when used as a RateLimiter bandwidth.
const Unlimited = math.MaxInt64

// RateLimiter is a token-bucket bandwidth shaper. The migration engine wraps
// its transfer path in one limiter per direction; capping it reproduces the
// paper's §VI-C-3 experiment where limiting migration bandwidth halves the
// impact on Bonnie++ throughput at the cost of ~37% longer pre-copy.
//
// Tokens are bytes. The bucket refills at bytesPerSec and holds at most
// burst bytes. Wait(n) blocks (via the Clock) until n tokens are available;
// n may exceed burst, in which case the call drains the bucket repeatedly.
type RateLimiter struct {
	mu          sync.Mutex
	clk         Clock
	bytesPerSec int64
	burst       int64
	tokens      float64
	last        time.Duration
}

// NewRateLimiter returns a limiter over clk at bytesPerSec with the given
// burst. A bytesPerSec of Unlimited returns a limiter whose Wait is free.
func NewRateLimiter(clk Clock, bytesPerSec, burst int64) *RateLimiter {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("clock: bad rate %d", bytesPerSec))
	}
	if burst <= 0 {
		burst = bytesPerSec / 10
		if burst == 0 {
			burst = 1
		}
	}
	return &RateLimiter{
		clk:         clk,
		bytesPerSec: bytesPerSec,
		burst:       burst,
		tokens:      float64(burst),
		last:        clk.Now(),
	}
}

// Rate returns the configured bandwidth in bytes per second.
func (r *RateLimiter) Rate() int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.bytesPerSec
}

// SetRate changes the bandwidth. Existing tokens are kept (clamped to the
// new burst).
func (r *RateLimiter) SetRate(bytesPerSec int64) {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("clock: bad rate %d", bytesPerSec))
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.refillLocked()
	r.bytesPerSec = bytesPerSec
}

func (r *RateLimiter) refillLocked() {
	now := r.clk.Now()
	if now > r.last {
		r.tokens += float64(now-r.last) / float64(time.Second) * float64(r.bytesPerSec)
		if r.tokens > float64(r.burst) {
			r.tokens = float64(r.burst)
		}
		r.last = now
	}
}

// Wait blocks until n bytes of budget are available, then spends them.
// It returns the total time slept.
func (r *RateLimiter) Wait(n int) time.Duration {
	if n <= 0 {
		return 0
	}
	var slept time.Duration
	remaining := int64(n)
	for remaining > 0 {
		r.mu.Lock()
		// Re-read under the lock: SetRate may retune a limiter mid-wait
		// (concurrent sends share one limiter), including to Unlimited.
		if r.bytesPerSec == Unlimited {
			r.mu.Unlock()
			return slept
		}
		r.refillLocked()
		chunk := remaining
		if chunk > r.burst {
			chunk = r.burst
		}
		if r.tokens >= float64(chunk) {
			r.tokens -= float64(chunk)
			remaining -= chunk
			r.mu.Unlock()
			continue
		}
		deficit := float64(chunk) - r.tokens
		wait := time.Duration(deficit / float64(r.bytesPerSec) * float64(time.Second))
		if wait <= 0 {
			wait = time.Nanosecond
		}
		r.mu.Unlock()
		r.clk.Sleep(wait)
		slept += wait
	}
	return slept
}
