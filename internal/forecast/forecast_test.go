package forecast_test

import (
	"math"
	"testing"
	"time"

	"bbmig/internal/blockdev"
	"bbmig/internal/forecast"
	"bbmig/internal/workload"
)

// squareIntegral returns the cumulative block writes of a square-wave rate
// (high for duty*period, then low) from time zero to t.
func squareIntegral(t, period time.Duration, high, low, duty float64) float64 {
	whole := float64(t / period)
	perPeriod := duty*high*period.Seconds() + (1-duty)*low*period.Seconds()
	c := whole * perPeriod
	rem := t % period
	highDur := time.Duration(duty * float64(period))
	if rem <= highDur {
		c += high * rem.Seconds()
	} else {
		c += high*highDur.Seconds() + low*(rem-highDur).Seconds()
	}
	return c
}

// feedSquare drives a model with heartbeat-style cumulative counters that
// follow a square-wave rate, from time zero through `until`.
func feedSquare(m *forecast.Model, until, period, hb time.Duration, high, low, duty float64) {
	for t := time.Duration(0); t <= until; t += hb {
		m.ObserveCount(t, int64(squareIntegral(t, period, high, low, duty)))
	}
}

const (
	diurnalPeriod = 40 * time.Minute
	diurnalHb     = 30 * time.Second
	diurnalHigh   = 500.0
	diurnalLow    = 10.0
)

func TestModelConstantTrace(t *testing.T) {
	m := forecast.NewModel(forecast.Config{})
	for i := 0; i <= 64; i++ {
		m.ObserveCount(time.Duration(i)*30*time.Second, int64(i)*3000) // 100 blk/s
	}
	if got := m.Rate(); math.Abs(got-100) > 1 {
		t.Fatalf("EWMA rate = %.2f, want ~100", got)
	}
	if got := m.MeanRate(); math.Abs(got-100) > 0.01 {
		t.Fatalf("mean rate = %.2f, want 100", got)
	}
	if p, ok := m.Period(); ok {
		t.Fatalf("constant trace detected period %v", p)
	}
	// Flat curve: any future time predicts the same rate.
	if got := m.RateAt(4 * time.Hour); math.Abs(got-100) > 1 {
		t.Fatalf("RateAt(future) = %.2f, want ~100", got)
	}
	at, rate := m.NextTrough(35*time.Minute, 2*time.Hour)
	if at != 35*time.Minute || math.Abs(rate-100) > 1 {
		t.Fatalf("NextTrough on flat curve = (%v, %.1f), want (now, ~100)", at, rate)
	}

	// Pinned convergence: 10000 blocks at 1000 blk/s against a 2000-block
	// hot set dirtied at 100 blk/s. Iter 1 ships the disk in 10 s (1000
	// writes -> ~787 unique); iter 2 ships those in ~0.8 s (~77 unique);
	// iter 3 lands under the 80-block threshold.
	c := m.PredictConvergence(forecast.MigrationParams{
		StartAt: 35 * time.Minute, Blocks: 10000, HotBlocks: 2000,
		BlocksPerSec: 1000, MaxIterations: 10, DirtyThreshold: 80,
	})
	if !c.Converges || c.Iterations != 2 {
		// iter 2's ~77 dirty is already under the 80 threshold
		t.Fatalf("convergence = %+v, want converged in 2 iterations", c)
	}
	if c.PreCopyTime < 10500*time.Millisecond || c.PreCopyTime > 11100*time.Millisecond {
		t.Fatalf("pre-copy time = %v, want ~10.8 s", c.PreCopyTime)
	}
	if c.FinalDirtyBlocks < 70 || c.FinalDirtyBlocks > 80 {
		t.Fatalf("final dirty = %d, want ~77", c.FinalDirtyBlocks)
	}
}

func TestModelDiurnalTrace(t *testing.T) {
	m := forecast.NewModel(forecast.Config{})
	feedSquare(m, 3*diurnalPeriod, diurnalPeriod, diurnalHb, diurnalHigh, diurnalLow, 0.5)

	p, ok := m.Period()
	if !ok {
		t.Fatal("no period detected on a 3-period square wave")
	}
	if p < diurnalPeriod-2*time.Minute || p > diurnalPeriod+2*time.Minute {
		t.Fatalf("period = %v, want ~%v", p, diurnalPeriod)
	}
	if s := m.Periodicity(); s < 0.5 {
		t.Fatalf("periodicity score = %.2f, want >= 0.5", s)
	}

	// Phase-bucket prediction one period ahead: mid-high and mid-low times.
	future := 3 * diurnalPeriod
	highAt := future + diurnalPeriod/4
	lowAt := future + 3*diurnalPeriod/4
	if got := m.RateAt(highAt); math.Abs(got-diurnalHigh) > 0.1*diurnalHigh {
		t.Fatalf("RateAt(high phase) = %.1f, want ~%.0f", got, diurnalHigh)
	}
	if got := m.RateAt(lowAt); math.Abs(got-diurnalLow) > 0.5*diurnalLow {
		t.Fatalf("RateAt(low phase) = %.1f, want ~%.0f", got, diurnalLow)
	}

	// A trough sought from mid-high phase lands in the low half-period.
	at, rate := m.NextTrough(highAt, 2*diurnalPeriod)
	phase := at % diurnalPeriod
	if phase < diurnalPeriod/2 {
		t.Fatalf("NextTrough landed at phase %v, still in the high half", phase)
	}
	if rate > 2*diurnalLow {
		t.Fatalf("NextTrough rate = %.1f, want ~%.0f", rate, diurnalLow)
	}

	// Convergence contrast: the same migration started in the trough
	// converges; started mid-high-phase it stalls (dirty rate catches the
	// 400 blk/s transfer rate).
	base := forecast.MigrationParams{
		Blocks: 20000, HotBlocks: 8000, BlocksPerSec: 400,
		MaxIterations: 8, DirtyThreshold: 64,
	}
	inTrough := base
	inTrough.StartAt = lowAt
	ct := m.PredictConvergence(inTrough)
	if !ct.Converges {
		t.Fatalf("trough-start migration did not converge: %+v", ct)
	}
	inHigh := base
	inHigh.StartAt = highAt
	ch := m.PredictConvergence(inHigh)
	if ch.Converges {
		t.Fatalf("high-phase migration converged: %+v", ch)
	}
	if ch.FinalDirtyBlocks < 3000 {
		t.Fatalf("high-phase final dirty = %d, want a ballooned (>3000) set", ch.FinalDirtyBlocks)
	}
	if ct.PreCopyTime >= ch.PreCopyTime {
		t.Fatalf("trough pre-copy %v not faster than high-phase %v", ct.PreCopyTime, ch.PreCopyTime)
	}
}

func TestModelBurstyTrace(t *testing.T) {
	// Deterministic aperiodic bursts: rate 800 for pseudo-randomly placed
	// 30 s windows, 20 otherwise.
	m := forecast.NewModel(forecast.Config{})
	state := uint64(0x9e3779b97f4a7c15)
	next := func() uint64 {
		state ^= state << 13
		state ^= state >> 7
		state ^= state << 17
		return state
	}
	var cum float64
	var sumRate float64
	n := 240
	for i := 0; i <= n; i++ {
		rate := 20.0
		if next()%4 == 0 {
			rate = 800
		}
		if i > 0 {
			cum += rate * 30
			sumRate += rate
		}
		m.ObserveCount(time.Duration(i)*30*time.Second, int64(cum))
	}
	trueMean := sumRate / float64(n)
	if got := m.MeanRate(); math.Abs(got-trueMean) > 0.02*trueMean {
		t.Fatalf("mean rate = %.1f, want ~%.1f", got, trueMean)
	}
	// Far-future prediction falls back to the long-run mean (no period, or
	// a weak one whose buckets still average near the mean).
	if got := m.RateAt(12 * time.Hour); math.Abs(got-trueMean) > 0.75*trueMean {
		t.Fatalf("RateAt(far future) = %.1f, want within 75%% of mean %.1f", got, trueMean)
	}
	c := m.PredictConvergence(forecast.MigrationParams{
		StartAt: time.Duration(n) * 30 * time.Second, Blocks: 50000, HotBlocks: 4000,
		BlocksPerSec: 2000, MaxIterations: 8, DirtyThreshold: 64,
	})
	if !c.Converges {
		t.Fatalf("bursty-mean migration should converge at 2000 blk/s: %+v", c)
	}
}

func TestModelDiabolicalTrace(t *testing.T) {
	const horizon = 600 * time.Second
	const window = 5 * time.Second

	g := workload.New(workload.Diabolic, 8192, 1)
	m := forecast.NewModel(forecast.Config{})
	var cum int64
	nextBoundary := window
	for {
		a := g.Next()
		if a.At >= horizon {
			break
		}
		for a.At >= nextBoundary {
			m.ObserveCount(nextBoundary, cum)
			nextBoundary += window
		}
		if a.Op == blockdev.Write {
			cum += int64(a.Count)
		}
	}
	m.ObserveCount(nextBoundary, cum)

	trueMean := float64(cum) / nextBoundary.Seconds()
	if got := m.MeanRate(); math.Abs(got-trueMean) > 0.05*trueMean {
		t.Fatalf("mean rate = %.1f, want within 5%% of %.1f", got, trueMean)
	}

	// Hot-set size from the locality analyzer, the pairing the cluster
	// layer uses: convergence against Bonnie++'s own unique-block count.
	g.Reset()
	loc := workload.Locality(g, horizon)
	c := m.PredictConvergence(forecast.MigrationParams{
		StartAt: nextBoundary, Blocks: 8192, HotBlocks: loc.UniqueBlocks,
		BlocksPerSec: 4 * trueMean, MaxIterations: 8, DirtyThreshold: 8,
	})
	if c.Iterations < 2 {
		t.Fatalf("diabolical at 4x mean rate finished in %d iterations; the hot set should force retransfers", c.Iterations)
	}
	if !c.Converges && c.FinalDirtyBlocks > loc.UniqueBlocks {
		t.Fatalf("final dirty %d exceeds the %d-block hot set", c.FinalDirtyBlocks, loc.UniqueBlocks)
	}
	// At a transfer rate well under the mean write rate, pre-copy must
	// stall: the §IV stop rule fires with a hot-set-sized dirty set.
	slow := m.PredictConvergence(forecast.MigrationParams{
		StartAt: nextBoundary, Blocks: 8192, HotBlocks: loc.UniqueBlocks,
		BlocksPerSec: trueMean / 2, MaxIterations: 8, DirtyThreshold: 8,
	})
	if slow.Converges {
		t.Fatalf("sub-write-rate migration converged: %+v", slow)
	}
}

// TestForecastErrorMonotone pins the property that the long-run mean's
// error is monotone-nonincreasing in the observation window. The windows
// deliberately end half a period off-phase, so each carries a bias of
// exactly half a high half-period's excess — an error that shrinks as
// 1/window and must therefore decrease strictly at every doubling.
func TestForecastErrorMonotone(t *testing.T) {
	trueMean := 0.5*diurnalHigh + 0.5*diurnalLow
	var prev float64
	for i, periods := range []float64{1.5, 2.5, 4.5, 8.5, 16.5} {
		m := forecast.NewModel(forecast.Config{})
		until := time.Duration(periods * float64(diurnalPeriod))
		feedSquare(m, until, diurnalPeriod, diurnalHb, diurnalHigh, diurnalLow, 0.5)
		err := math.Abs(m.MeanRate() - trueMean)
		if i > 0 && err > prev+1e-9 {
			t.Fatalf("error grew with window: %.3f @ %.1f periods > %.3f before", err, periods, prev)
		}
		prev = err
	}
	if prev > 0.1*trueMean {
		t.Fatalf("error after 16.5 periods = %.3f, want < 10%% of mean", prev)
	}

	// The same property under aperiodic noise, with slack: bursty traces
	// converge in distribution, not sample-path-monotonically.
	burstErr := func(samples int) float64 {
		m := forecast.NewModel(forecast.Config{})
		state := uint64(12345)
		next := func() uint64 {
			state ^= state << 13
			state ^= state >> 7
			state ^= state << 17
			return state
		}
		var cum, sum float64
		for i := 0; i <= samples; i++ {
			rate := 20.0
			if next()%4 == 0 {
				rate = 800
			}
			if i > 0 {
				cum += rate * 30
				sum += rate
			}
			m.ObserveCount(time.Duration(i)*30*time.Second, int64(cum))
		}
		return math.Abs(m.MeanRate() - 215) // E[rate] = 0.75*20 + 0.25*800
	}
	first := burstErr(64)
	worst := first
	for _, n := range []int{128, 256, 512, 1024} {
		e := burstErr(n)
		if e > worst*1.5+10 {
			t.Fatalf("bursty error at %d samples = %.1f, want <= %.1f (+slack)", n, e, worst)
		}
		if e < worst {
			worst = e
		}
	}
	if final := burstErr(2048); final > first {
		t.Fatalf("bursty error did not shrink: %.1f at 2048 samples vs %.1f at 64", final, first)
	}
}
