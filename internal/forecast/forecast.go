// Package forecast models per-domain dirty-block write rates so the cluster
// layer can anticipate migrations instead of merely reacting to them. The
// paper's §IV stop conditions decide one migration at a time — "stop
// pre-copy when the dirty rate catches the transfer rate"; this package
// generalizes that test into a prediction: given a domain's observed write
// history, what would an iterative pre-copy cost if it started *now*, and
// when is the next write-rate trough worth deferring it into?
//
// A Model ingests either raw rate samples (ObserveRate) or the cumulative
// write counters a hostd heartbeat reports (ObserveCount) and maintains
// three estimators on top of a bounded sample ring:
//
//   - an exponentially-weighted moving average (Rate) tracking the recent
//     write rate with a configurable half-life;
//   - a duration-weighted long-run mean (MeanRate) over every observation
//     ever made, which only sharpens as the window grows — the estimator
//     behind the monotone-error property the tests pin;
//   - a periodicity detector (Period) running normalized autocorrelation
//     over the ring, feeding a phase-bucketed predictor (RateAt) that
//     projects the rate at arbitrary future times and locates upcoming
//     troughs (NextTrough).
//
// PredictConvergence then replays the §IV pre-copy loop against the
// predicted rate curve: iteration k ships the blocks iteration k-1
// dirtied, writes accumulate against a hot-set-capped unique-block model
// (the same saturation law workload.Locality measures), and the loop stops
// when the dirty set falls under the threshold, the dirty rate catches the
// transfer rate, or the iteration cap fires. The result — convergence,
// iteration count, pre-copy time, final dirty set — is what admission
// control and the autopilot trade off against waiting for a trough.
//
// All Model methods are safe for concurrent use.
package forecast

import (
	"math"
	"sync"
	"time"
)

// Defaults for Config fields left zero.
const (
	// DefaultMaxSamples bounds the sample ring: enough for a few periods of
	// heartbeat-cadence history without per-domain memory mattering at
	// 10k-domain scale (256 samples ≈ 4 KiB).
	DefaultMaxSamples = 256
	// DefaultHalfLife is the EWMA half-life: five minutes, a few heartbeat
	// intervals, so Rate tracks phase changes without chasing single bursts.
	DefaultHalfLife = 5 * time.Minute
	// DefaultBuckets is how many phase buckets the periodic predictor
	// divides one period into.
	DefaultBuckets = 32
	// DefaultMinPeriodicity is the autocorrelation score a candidate period
	// must reach before RateAt trusts phase buckets over the flat estimators.
	DefaultMinPeriodicity = 0.5
	// DefaultMaxIterations caps the predicted pre-copy loop when
	// MigrationParams.MaxIterations is zero.
	DefaultMaxIterations = 30
)

// Config parameterizes a Model. The zero value selects the defaults above.
type Config struct {
	// MaxSamples is the sample-ring capacity; zero selects DefaultMaxSamples.
	MaxSamples int
	// HalfLife is the EWMA half-life; zero selects DefaultHalfLife.
	HalfLife time.Duration
	// Buckets is the phase resolution of the periodic predictor; zero
	// selects DefaultBuckets.
	Buckets int
	// MinPeriodicity is the autocorrelation acceptance threshold in [0, 1];
	// zero selects DefaultMinPeriodicity.
	MinPeriodicity float64
}

func (c Config) withDefaults() Config {
	if c.MaxSamples <= 0 {
		c.MaxSamples = DefaultMaxSamples
	}
	if c.HalfLife <= 0 {
		c.HalfLife = DefaultHalfLife
	}
	if c.Buckets <= 0 {
		c.Buckets = DefaultBuckets
	}
	if c.MinPeriodicity <= 0 {
		c.MinPeriodicity = DefaultMinPeriodicity
	}
	return c
}

// sample is one observed (interval, rate) pair on the model's timeline.
type sample struct {
	at   time.Duration // end of the observation interval
	dur  time.Duration // interval length (0 for the very first sample)
	rate float64       // blocks/second over the interval
}

// Model is a per-domain dirty-rate estimator. Feed it write observations
// with ObserveCount or ObserveRate; query it with Rate, MeanRate, Period,
// RateAt, NextTrough, and PredictConvergence.
type Model struct {
	mu  sync.Mutex
	cfg Config

	ring  []sample // fixed-capacity ring, chronological from start
	start int      // index of the oldest sample
	n     int      // live sample count

	lastAt    time.Duration // timeline position of the newest observation
	lastCount int64         // last cumulative counter seen by ObserveCount
	haveCount bool

	ewma     float64
	haveEWMA bool

	sumRateDur float64 // ∫ rate dt over every observation ever made
	sumDur     float64 // total observed seconds

	// Cached analysis over the ring, rebuilt lazily after observations.
	cacheOK     bool
	periodic    bool
	period      time.Duration
	periodScore float64
	bucketRate  []float64 // per-phase-bucket duration-weighted mean rate
	bucketHas   []bool
	chron       []sample // scratch: chronological view of the ring
}

// NewModel returns an empty model with cfg's (defaulted) parameters.
func NewModel(cfg Config) *Model {
	return &Model{cfg: cfg.withDefaults()}
}

// ObserveCount feeds one heartbeat-style observation: the domain's
// cumulative block-write counter as of time at on the model's timeline.
// The first call only anchors the counter; each later call converts the
// delta into a rate sample over the elapsed interval. A counter that went
// backwards is treated as a restart (the domain moved hosts and its new
// backend counts from zero), so the raw value is the delta. Observations
// at or before the previous timestamp are ignored.
func (m *Model) ObserveCount(at time.Duration, count int64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.haveCount {
		m.haveCount = true
		m.lastCount = count
		m.lastAt = at
		return
	}
	if at <= m.lastAt {
		return
	}
	delta := count - m.lastCount
	if delta < 0 {
		delta = count
	}
	dur := at - m.lastAt
	m.observeLocked(at, dur, float64(delta)/dur.Seconds())
	m.lastCount = count
}

// ObserveRate feeds one pre-computed rate sample (blocks/second) observed
// over the interval ending at time at. The interval length is inferred
// from the previous observation's timestamp. Observations at or before the
// previous timestamp are ignored.
func (m *Model) ObserveRate(at time.Duration, rate float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.n > 0 || m.haveCount {
		if at <= m.lastAt {
			return
		}
		m.observeLocked(at, at-m.lastAt, rate)
		return
	}
	m.observeLocked(at, 0, rate)
}

// observeLocked appends one sample and updates the running estimators.
func (m *Model) observeLocked(at, dur time.Duration, rate float64) {
	if m.ring == nil {
		m.ring = make([]sample, m.cfg.MaxSamples)
	}
	s := sample{at: at, dur: dur, rate: rate}
	if m.n < len(m.ring) {
		m.ring[(m.start+m.n)%len(m.ring)] = s
		m.n++
	} else {
		m.ring[m.start] = s
		m.start = (m.start + 1) % len(m.ring)
	}
	m.lastAt = at
	m.cacheOK = false

	if dur > 0 {
		sec := dur.Seconds()
		m.sumRateDur += rate * sec
		m.sumDur += sec
		// Time-decayed EWMA: the decay factor depends on how much time the
		// observation covers, so irregular heartbeats still weight correctly.
		if !m.haveEWMA {
			m.ewma = rate
			m.haveEWMA = true
		} else {
			alpha := 1 - math.Exp(-sec*math.Ln2/m.cfg.HalfLife.Seconds())
			m.ewma += alpha * (rate - m.ewma)
		}
	} else if !m.haveEWMA {
		m.ewma = rate
		m.haveEWMA = true
	}
}

// Samples returns how many rate samples the ring currently holds.
func (m *Model) Samples() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.n
}

// Rate returns the EWMA estimate of the current write rate in
// blocks/second (zero before any observation).
func (m *Model) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.ewma
}

// MeanRate returns the duration-weighted mean rate over every observation
// ever made — not just the ring — so its error against a stationary
// workload's true mean is monotone-nonincreasing in the observation
// window. Zero before the second observation.
func (m *Model) MeanRate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.sumDur == 0 {
		return 0
	}
	return m.sumRateDur / m.sumDur
}

// Period returns the detected dominant write-rate period, if the ring's
// autocorrelation found one above Config.MinPeriodicity.
func (m *Model) Period() (time.Duration, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refreshLocked()
	return m.period, m.periodic
}

// Periodicity returns the autocorrelation score of the detected period
// (zero when aperiodic) — a confidence signal for schedulers deciding
// whether a trough forecast is worth deferring work into.
func (m *Model) Periodicity() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refreshLocked()
	if !m.periodic {
		return 0
	}
	return m.periodScore
}

// RateAt predicts the write rate (blocks/second) at an arbitrary timeline
// position, past or future. With a detected period the prediction is the
// duration-weighted mean of ring samples sharing at's phase bucket; without
// one it is the EWMA near the present and the long-run mean farther out.
func (m *Model) RateAt(at time.Duration) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.rateAtLocked(at)
}

func (m *Model) rateAtLocked(at time.Duration) float64 {
	m.refreshLocked()
	if m.periodic {
		b := m.bucketOf(at)
		if m.bucketHas[b] {
			return m.bucketRate[b]
		}
	}
	if m.sumDur == 0 {
		return m.ewma
	}
	// Aperiodic: trust recency only near the present — two mean sample
	// intervals out, fall back to the long-run mean.
	if m.n > 0 {
		horizon := 2 * m.meanIntervalLocked()
		if at >= m.lastAt-horizon && at <= m.lastAt+horizon {
			return m.ewma
		}
	}
	return m.sumRateDur / m.sumDur
}

// bucketOf maps a timeline position to its phase bucket (callers ensure a
// period is detected).
func (m *Model) bucketOf(at time.Duration) int {
	phase := at % m.period
	if phase < 0 {
		phase += m.period
	}
	b := int(int64(phase) * int64(len(m.bucketRate)) / int64(m.period))
	if b >= len(m.bucketRate) {
		b = len(m.bucketRate) - 1
	}
	return b
}

// meanIntervalLocked returns the mean spacing of ring samples.
func (m *Model) meanIntervalLocked() time.Duration {
	if m.n < 2 {
		return 0
	}
	first := m.ring[m.start]
	last := m.ring[(m.start+m.n-1)%len(m.ring)]
	return (last.at - first.at) / time.Duration(m.n-1)
}

// NextTrough scans [from, from+horizon] for the earliest moment the
// predicted rate comes within 10% of the window's minimum, returning that
// time and the predicted rate there. Without a detected period the rate
// curve is flat, so the trough is now: it returns (from, RateAt(from)).
func (m *Model) NextTrough(from, horizon time.Duration) (time.Duration, float64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.refreshLocked()
	if !m.periodic || horizon <= 0 {
		return from, m.rateAtLocked(from)
	}
	span := m.period
	if horizon < span {
		span = horizon
	}
	step := m.period / time.Duration(len(m.bucketRate))
	if step <= 0 {
		step = time.Second
	}
	min := math.Inf(1)
	for t := from; t <= from+span; t += step {
		if r := m.rateAtLocked(t); r < min {
			min = r
		}
	}
	limit := min*1.1 + 1e-9
	for t := from; t <= from+span; t += step {
		if r := m.rateAtLocked(t); r <= limit {
			return t, r
		}
	}
	return from, m.rateAtLocked(from)
}

// refreshLocked rebuilds the cached period detection and phase buckets.
func (m *Model) refreshLocked() {
	if m.cacheOK {
		return
	}
	m.cacheOK = true
	m.periodic = false
	m.periodScore = 0

	m.chron = m.chron[:0]
	for i := 0; i < m.n; i++ {
		m.chron = append(m.chron, m.ring[(m.start+i)%len(m.ring)])
	}
	n := len(m.chron)
	if n < 8 {
		return
	}

	// Normalized autocorrelation over the (approximately uniform) sample
	// sequence. Any slowly-varying signal correlates near 1.0 at tiny lags,
	// so the search starts after the correlation first dips — the first
	// peak past the dip is the fundamental period, not a harmonic.
	mean, va := 0.0, 0.0
	for _, s := range m.chron {
		mean += s.rate
	}
	mean /= float64(n)
	for _, s := range m.chron {
		va += (s.rate - mean) * (s.rate - mean)
	}
	va /= float64(n)
	if va <= 1e-12 || math.Sqrt(va) < 0.05*math.Abs(mean) {
		return // effectively constant: no period to find
	}
	scores := make([]float64, n/2+1)
	for lag := 2; lag <= n/2; lag++ {
		var num float64
		for i := 0; i+lag < n; i++ {
			num += (m.chron[i].rate - mean) * (m.chron[i+lag].rate - mean)
		}
		scores[lag] = num / (float64(n-lag) * va)
	}
	dip := 0
	for lag := 2; lag <= n/2; lag++ {
		if scores[lag] < 0.25 {
			dip = lag
			break
		}
	}
	if dip == 0 {
		return // never decorrelates within the ring: no cycle visible
	}
	bestLag, bestR := 0, 0.0
	for lag := dip; lag <= n/2; lag++ {
		if scores[lag] > bestR {
			bestR, bestLag = scores[lag], lag
		}
	}
	if bestLag == 0 || bestR < m.cfg.MinPeriodicity {
		return
	}
	interval := m.meanIntervalLocked()
	if interval <= 0 {
		return
	}
	m.periodic = true
	m.period = time.Duration(bestLag) * interval
	m.periodScore = bestR

	// Duration-weighted per-phase-bucket means over the ring.
	if cap(m.bucketRate) < m.cfg.Buckets {
		m.bucketRate = make([]float64, m.cfg.Buckets)
		m.bucketHas = make([]bool, m.cfg.Buckets)
	}
	m.bucketRate = m.bucketRate[:m.cfg.Buckets]
	m.bucketHas = m.bucketHas[:m.cfg.Buckets]
	sums := make([]float64, m.cfg.Buckets)
	weights := make([]float64, m.cfg.Buckets)
	for _, s := range m.chron {
		w := s.dur.Seconds()
		if w <= 0 {
			continue
		}
		b := m.bucketOf(s.at)
		sums[b] += s.rate * w
		weights[b] += w
	}
	for b := range sums {
		if weights[b] > 0 {
			m.bucketRate[b] = sums[b] / weights[b]
			m.bucketHas[b] = true
		} else {
			m.bucketRate[b] = 0
			m.bucketHas[b] = false
		}
	}
}

// integrateLocked returns the predicted blocks written over [from, to].
func (m *Model) integrateLocked(from, to time.Duration) float64 {
	if to <= from {
		return 0
	}
	step := (to - from) / 16
	if m.periodic {
		if s := m.period / time.Duration(len(m.bucketRate)); s > 0 && s < step {
			step = s
		}
	}
	if step <= 0 {
		step = time.Millisecond
	}
	total := 0.0
	for t := from; t < to; t += step {
		end := t + step
		if end > to {
			end = to
		}
		mid := t + (end-t)/2
		total += m.rateAtLocked(mid) * (end - t).Seconds()
	}
	return total
}

// MigrationParams describes one candidate (domain, link-share) pair for
// PredictConvergence.
type MigrationParams struct {
	// StartAt is when the pre-copy would begin, on the model's timeline
	// (the same time base its observations used).
	StartAt time.Duration
	// Blocks is the domain's VBD size in blocks.
	Blocks int
	// HotBlocks caps the writable working set: predicted writes dirty at
	// most this many unique blocks (workload.LocalityStats.UniqueBlocks is
	// the natural source). Zero means the whole disk is writable.
	HotBlocks int
	// BlocksPerSec is the link share the migration would get, in
	// blocks/second.
	BlocksPerSec float64
	// MaxIterations caps the pre-copy loop; zero selects
	// DefaultMaxIterations.
	MaxIterations int
	// DirtyThreshold stops the loop once the predicted dirty set is at or
	// under this many blocks (zero: only a fully clean iteration stops it).
	DirtyThreshold int
}

// Convergence is PredictConvergence's verdict on one candidate migration.
type Convergence struct {
	// Converges reports whether the predicted dirty set fell to the
	// threshold. False means a stop rule fired first — the dirty rate
	// caught the transfer rate (§IV) or the iteration cap hit — and the
	// cutover would ship FinalDirtyBlocks.
	Converges bool
	// Iterations is how many pre-copy iterations the prediction ran.
	Iterations int
	// PreCopyTime is the predicted wall time of those iterations.
	PreCopyTime time.Duration
	// FinalDirtyBlocks is the predicted dirty set at cutover.
	FinalDirtyBlocks int
	// Downtime is the predicted freeze window: FinalDirtyBlocks at the
	// given link share. Platform-fixed pause costs are the caller's to add.
	Downtime time.Duration
}

// PredictConvergence replays the §IV iterative pre-copy loop against the
// model's predicted rate curve: each iteration ships the previous
// iteration's dirty set while new writes accumulate under a hot-set-capped
// unique-block law, and the loop stops when the dirty set reaches the
// threshold (converged), when it stops shrinking — the paper's "dirty rate
// caught the transfer rate" — or at the iteration cap.
func (m *Model) PredictConvergence(p MigrationParams) Convergence {
	m.mu.Lock()
	defer m.mu.Unlock()

	c := Convergence{}
	if p.Blocks <= 0 || p.BlocksPerSec <= 0 {
		return c
	}
	maxIters := p.MaxIterations
	if maxIters <= 0 {
		maxIters = DefaultMaxIterations
	}
	hot := float64(p.HotBlocks)
	if hot <= 0 {
		hot = float64(p.Blocks)
	}

	toSend := float64(p.Blocks)
	t := p.StartAt
	prev := math.Inf(1)
	for iter := 1; ; iter++ {
		dt := time.Duration(toSend / p.BlocksPerSec * float64(time.Second))
		writes := m.integrateLocked(t, t+dt)
		dirty := hot * (1 - math.Exp(-writes/hot))
		t += dt
		c.Iterations = iter
		c.FinalDirtyBlocks = int(math.Ceil(dirty))
		if c.FinalDirtyBlocks <= p.DirtyThreshold {
			c.Converges = true
			break
		}
		if iter >= maxIters {
			break
		}
		if iter > 1 && dirty >= prev {
			break // dirty rate caught the transfer rate: pre-copy has stalled
		}
		prev = dirty
		toSend = dirty
	}
	c.PreCopyTime = t - p.StartAt
	c.Downtime = time.Duration(float64(c.FinalDirtyBlocks) / p.BlocksPerSec * float64(time.Second))
	return c
}
