package transport

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"bbmig/internal/clock"
)

// rwc adapts two in-memory pipes into an io.ReadWriteCloser pair.
func netPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	ar, bw := io.Pipe()
	br, aw := io.Pipe()
	a := NewStream(struct {
		io.Reader
		io.Writer
		io.Closer
	}{ar, aw, aw})
	b := NewStream(struct {
		io.Reader
		io.Writer
		io.Closer
	}{br, bw, bw})
	return a, b
}

func TestStreamRoundTrip(t *testing.T) {
	a, b := netPair(t)
	defer a.Close()
	defer b.Close()
	want := Message{Type: MsgBlockData, Arg: 42, Payload: bytes.Repeat([]byte{9}, 4096)}
	errc := make(chan error, 1)
	go func() { errc <- a.Send(want) }()
	got, err := b.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if err := <-errc; err != nil {
		t.Fatal(err)
	}
	if got.Type != want.Type || got.Arg != want.Arg || !bytes.Equal(got.Payload, want.Payload) {
		t.Fatalf("got %+v", got)
	}
}

func TestStreamOrdering(t *testing.T) {
	a, b := netPair(t)
	defer a.Close()
	defer b.Close()
	const n = 100
	go func() {
		for i := 0; i < n; i++ {
			a.Send(Message{Type: MsgBlockData, Arg: uint64(i)})
		}
	}()
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Arg != uint64(i) {
			t.Fatalf("message %d has Arg %d", i, m.Arg)
		}
	}
}

func TestStreamEmptyPayload(t *testing.T) {
	a, b := netPair(t)
	defer a.Close()
	defer b.Close()
	go a.Send(Message{Type: MsgSuspend})
	m, err := b.Recv()
	if err != nil || m.Type != MsgSuspend || m.Payload != nil {
		t.Fatalf("m=%+v err=%v", m, err)
	}
}

func TestStreamConcurrentSenders(t *testing.T) {
	a, b := netPair(t)
	defer a.Close()
	defer b.Close()
	const senders, per = 8, 50
	var wg sync.WaitGroup
	for s := 0; s < senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if err := a.Send(Message{Type: MsgBlockData, Arg: uint64(s)}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
		}(s)
	}
	counts := make(map[uint64]int)
	for i := 0; i < senders*per; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatal(err)
		}
		counts[m.Arg]++
	}
	wg.Wait()
	for s := 0; s < senders; s++ {
		if counts[uint64(s)] != per {
			t.Fatalf("sender %d: %d messages", s, counts[uint64(s)])
		}
	}
}

func TestRejectOversizedPayload(t *testing.T) {
	a, _ := NewPipe(1)
	err := a.Send(Message{Type: MsgBlockData, Payload: make([]byte, MaxPayload+1)})
	if err == nil {
		t.Fatal("oversized payload accepted")
	}
}

func TestReadMessageRejectsCorruptLength(t *testing.T) {
	var buf bytes.Buffer
	b, _ := encode(nil, Message{Type: MsgBlockData, Arg: 1, Payload: []byte{1}})
	// Corrupt the length field to a huge value.
	b[9], b[10], b[11], b[12] = 0xff, 0xff, 0xff, 0xff
	buf.Write(b)
	if _, err := readMessage(&buf); err == nil {
		t.Fatal("corrupt length accepted")
	}
}

func TestPipeRoundTripAndClose(t *testing.T) {
	a, b := NewPipe(4)
	want := Message{Type: MsgPullRequest, Arg: 7}
	if err := a.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := b.Recv()
	if err != nil || got.Arg != 7 {
		t.Fatalf("got %+v err %v", got, err)
	}
	a.Close()
	a.Close() // double close is fine
	if _, err := a.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv on closed: %v", err)
	}
	if err := b.Send(want); !errors.Is(err, ErrClosed) {
		t.Fatalf("send to closed peer: %v", err)
	}
}

func TestPipeDrainsInFlightAfterPeerClose(t *testing.T) {
	a, b := NewPipe(4)
	a.Send(Message{Type: MsgDone})
	a.Close()
	m, err := b.Recv()
	if err != nil || m.Type != MsgDone {
		t.Fatalf("in-flight message lost: %+v %v", m, err)
	}
	if _, err := b.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("after drain: %v", err)
	}
}

func TestPipeCopiesPayload(t *testing.T) {
	a, b := NewPipe(1)
	buf := []byte{1, 2, 3}
	a.Send(Message{Type: MsgBlockData, Payload: buf})
	buf[0] = 99 // sender reuses its buffer
	m, _ := b.Recv()
	if m.Payload[0] != 1 {
		t.Fatal("pipe aliases sender buffer")
	}
}

func TestMeterCounts(t *testing.T) {
	a, b := NewPipe(8)
	ma, mb := NewMeter(a), NewMeter(b)
	msg := Message{Type: MsgBlockData, Arg: 1, Payload: make([]byte, 100)}
	for i := 0; i < 3; i++ {
		if err := ma.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if _, err := mb.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	wantBytes := int64(3 * msg.FrameSize())
	if ma.BytesSent() != wantBytes || ma.MessagesSent() != 3 {
		t.Fatalf("sent %d bytes / %d msgs", ma.BytesSent(), ma.MessagesSent())
	}
	if mb.BytesReceived() != wantBytes || mb.MessagesReceived() != 3 {
		t.Fatalf("received %d bytes / %d msgs", mb.BytesReceived(), mb.MessagesReceived())
	}
	ma.Close()
}

func TestShapedThrottles(t *testing.T) {
	v := clock.NewVirtual()
	a, b := NewPipe(1024)
	rl := clock.NewRateLimiter(v, 1000, 100) // 1000 B/s virtual
	sa := NewShaped(a, rl)
	msg := Message{Type: MsgBlockData, Payload: make([]byte, 487)} // 500 wire bytes
	go func() {
		for i := 0; i < 10; i++ {
			b.Recv()
		}
	}()
	for i := 0; i < 10; i++ {
		if err := sa.Send(msg); err != nil {
			t.Fatal(err)
		}
	}
	// 10 * 500B = 5000B at 1000B/s ≈ 4.9s of virtual time.
	if got := v.Now(); got < 4*time.Second || got > 6*time.Second {
		t.Fatalf("shaped send advanced %v, want ~4.9s", got)
	}
	sa.Close()
	if _, err := sa.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestGeometryRoundTrip(t *testing.T) {
	g := Geometry{BlockSize: 4096, NumBlocks: 1000, PageSize: 4096, NumPages: 512}
	data, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	var got Geometry
	if err := got.UnmarshalBinary(data); err != nil {
		t.Fatal(err)
	}
	if got != g {
		t.Fatalf("round trip %+v != %+v", got, g)
	}
	if err := got.UnmarshalBinary(data[:10]); err == nil {
		t.Fatal("short geometry accepted")
	}
	bad := Geometry{BlockSize: -1}
	if bad.Validate() == nil {
		t.Fatal("invalid geometry accepted")
	}
}

func TestQuickEncodeDecode(t *testing.T) {
	f := func(typ uint8, arg uint64, payload []byte) bool {
		m := Message{Type: MsgType(typ), Arg: arg, Payload: payload}
		b, err := encode(nil, m)
		if err != nil {
			return len(payload) > MaxPayload
		}
		got, err := readMessage(bytes.NewReader(b))
		if err != nil {
			return false
		}
		return got.Type == m.Type && got.Arg == m.Arg && bytes.Equal(got.Payload, m.Payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestTCPEndToEnd(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type res struct {
		c   Conn
		err error
	}
	acc := make(chan res, 1)
	go func() {
		c, err := Accept(l)
		acc <- res{c, err}
	}()
	client, err := Dial(l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	server := <-acc
	if server.err != nil {
		t.Fatal(server.err)
	}
	defer server.c.Close()

	want := Message{Type: MsgHello, Arg: ProtocolVersion, Payload: []byte("geom")}
	if err := client.Send(want); err != nil {
		t.Fatal(err)
	}
	got, err := server.c.Recv()
	if err != nil || got.Type != MsgHello || string(got.Payload) != "geom" {
		t.Fatalf("got %+v err %v", got, err)
	}
	// reply direction
	if err := server.c.Send(Message{Type: MsgHelloAck}); err != nil {
		t.Fatal(err)
	}
	if m, err := client.Recv(); err != nil || m.Type != MsgHelloAck {
		t.Fatalf("ack: %+v %v", m, err)
	}
}

func TestMsgTypeString(t *testing.T) {
	if MsgBlockData.String() != "BLOCK_DATA" {
		t.Fatal(MsgBlockData.String())
	}
	if MsgType(200).String() == "" {
		t.Fatal("unknown type has empty string")
	}
}
