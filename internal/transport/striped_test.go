package transport

import (
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// stripedPipes returns two connected Striped ends over n in-process pipes.
func stripedPipes(n, buffer int) (*Striped, *Striped) {
	a := make([]Conn, n)
	b := make([]Conn, n)
	for i := range a {
		a[i], b[i] = NewPipe(buffer)
	}
	return NewStriped(a), NewStriped(b)
}

func TestStripedSingleStreamPassthrough(t *testing.T) {
	s, r := stripedPipes(1, 8)
	defer s.Close()
	defer r.Close()
	// A control frame over one stream must not grow any barrier frames:
	// the single-stream configuration stays wire-identical to the seed.
	if err := s.Send(Message{Type: MsgSuspend}); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(Message{Type: MsgBlockData, Arg: 7, Payload: []byte{1}}); err != nil {
		t.Fatal(err)
	}
	if got := s.MessagesSent(); got != 2 {
		t.Fatalf("single-stream striped sent %d frames for 2 messages", got)
	}
	m, err := r.Recv()
	if err != nil || m.Type != MsgSuspend {
		t.Fatalf("recv %v %v", m, err)
	}
	m, err = r.Recv()
	if err != nil || m.Type != MsgBlockData || m.Arg != 7 {
		t.Fatalf("recv %v %v", m, err)
	}
}

// TestStripedControlOrdering checks the barrier guarantee: every data frame
// sent before a control frame is received before it, and every data frame
// sent after is received after it — across many phases and streams.
func TestStripedControlOrdering(t *testing.T) {
	const streams = 4
	const phases = 20
	const perPhase = 37
	s, r := stripedPipes(streams, 4)
	defer s.Close()
	defer r.Close()

	go func() {
		for ph := 0; ph < phases; ph++ {
			for i := 0; i < perPhase; i++ {
				payload := make([]byte, 8)
				binary.LittleEndian.PutUint64(payload, uint64(ph))
				if err := s.Send(Message{Type: MsgBlockData, Arg: uint64(i), Payload: payload}); err != nil {
					t.Errorf("send: %v", err)
					return
				}
			}
			if err := s.Send(Message{Type: MsgIterEnd, Arg: uint64(ph)}); err != nil {
				t.Errorf("control send: %v", err)
				return
			}
		}
	}()

	for ph := 0; ph < phases; ph++ {
		seen := 0
		for {
			m, err := r.Recv()
			if err != nil {
				t.Fatal(err)
			}
			if m.Type == MsgIterEnd {
				if int(m.Arg) != ph {
					t.Fatalf("phase %d closed by control %d", ph, m.Arg)
				}
				if seen != perPhase {
					t.Fatalf("phase %d: control arrived after %d/%d data frames", ph, seen, perPhase)
				}
				break
			}
			if got := binary.LittleEndian.Uint64(m.Payload); int(got) != ph {
				t.Fatalf("phase %d received frame from phase %d", ph, got)
			}
			seen++
		}
	}
}

// TestStripedConcurrentSendRace hammers Send from many goroutines — the
// shape of the engine's worker pool — with interleaved control frames from
// a coordinator. Run under -race.
func TestStripedConcurrentSendRace(t *testing.T) {
	const streams = 3
	const workers = 8
	const rounds = 5
	const perWorker = 50
	s, r := stripedPipes(streams, 8)
	defer s.Close()
	defer r.Close()

	recvDone := make(chan int, 1)
	go func() {
		data, controls := 0, 0
		for controls < rounds {
			m, err := r.Recv()
			if err != nil {
				t.Errorf("recv: %v", err)
				break
			}
			if m.Type == MsgIterEnd {
				controls++
			} else {
				data++
			}
		}
		recvDone <- data
	}()

	for round := 0; round < rounds; round++ {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < perWorker; i++ {
					if err := s.Send(Message{Type: MsgBlockData, Arg: uint64(w*1000 + i), Payload: []byte{byte(w)}}); err != nil {
						t.Errorf("worker send: %v", err)
						return
					}
				}
			}(w)
		}
		wg.Wait() // quiesce the pool before the phase signal, like the engine
		if err := s.Send(Message{Type: MsgIterEnd, Arg: uint64(round)}); err != nil {
			t.Fatal(err)
		}
	}
	if got := <-recvDone; got != rounds*workers*perWorker {
		t.Fatalf("received %d data frames, want %d", got, rounds*workers*perWorker)
	}
}

func TestStripedMeterAggregation(t *testing.T) {
	s, r := stripedPipes(4, 8)
	defer s.Close()
	defer r.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 9; i++ {
			if _, err := r.Recv(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	}()
	for i := 0; i < 8; i++ {
		if err := s.Send(Message{Type: MsgBlockData, Arg: uint64(i), Payload: make([]byte, 16)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Send(Message{Type: MsgPushDone}); err != nil {
		t.Fatal(err)
	}
	<-done
	// 8 data + 1 control + 4 barriers; data round-robins so every stream
	// carried exactly 2 data frames plus 1 barrier, stream 0 also the
	// control.
	if got := s.MessagesSent(); got != 13 {
		t.Fatalf("aggregate MessagesSent = %d, want 13", got)
	}
	per := s.PerStream()
	if len(per) != 4 {
		t.Fatalf("PerStream len %d", len(per))
	}
	for i, m := range per {
		want := int64(3) // 2 data + 1 barrier
		if i == 0 {
			want = 4 // + control
		}
		if got := m.MessagesSent(); got != want {
			t.Fatalf("stream %d sent %d frames, want %d", i, got, want)
		}
	}
	wantBytes := s.BytesSent()
	if got := r.BytesReceived(); got != wantBytes {
		t.Fatalf("receiver counted %d bytes, sender %d", got, wantBytes)
	}
}

func TestStripedCloseUnblocksRecv(t *testing.T) {
	s, r := stripedPipes(3, 4)
	errCh := make(chan error, 1)
	go func() {
		_, err := r.Recv()
		errCh <- err
	}()
	s.Close()
	r.Close()
	if err := <-errCh; err == nil {
		t.Fatal("Recv survived close")
	}
}

// TestStripedPeerCloseFailsConn: one underlying stream dying must fail the
// logical conn (and unpark readers waiting at a barrier) instead of hanging.
func TestStripedPeerCloseFailsConn(t *testing.T) {
	a := make([]Conn, 3)
	b := make([]Conn, 3)
	for i := range a {
		a[i], b[i] = NewPipe(4)
	}
	s := NewStriped(a)
	r := NewStriped(b)
	defer s.Close()
	defer r.Close()

	// Park the receiver's readers at a barrier that stream 2 never joins:
	// kill stream 2 mid-fence and require an error, not a deadlock.
	if err := a[0].Send(Message{Type: MsgStripeBarrier, Arg: 1}); err != nil {
		t.Fatal(err)
	}
	if err := a[1].Send(Message{Type: MsgStripeBarrier, Arg: 1}); err != nil {
		t.Fatal(err)
	}
	a[2].Close()
	if _, err := r.Recv(); err == nil {
		t.Fatal("expected stream failure")
	}
}

func TestDialAcceptStriped(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()

	type acceptOut struct {
		c   *Striped
		err error
	}
	accCh := make(chan acceptOut, 1)
	go func() {
		c, err := AcceptStriped(l, nil)
		accCh <- acceptOut{c, err}
	}()
	s, err := DialStriped(l.Addr().String(), 4, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	out := <-accCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	r := out.c
	defer r.Close()
	if r.Streams() != 4 {
		t.Fatalf("accepted %d streams", r.Streams())
	}

	// Exercise data + control both ways over real TCP.
	const frames = 100
	go func() {
		for i := 0; i < frames; i++ {
			payload := make([]byte, 64)
			payload[0] = byte(i)
			if err := s.Send(Message{Type: MsgBlockData, Arg: uint64(i), Payload: payload}); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
		if err := s.Send(Message{Type: MsgPushDone}); err != nil {
			t.Errorf("send control: %v", err)
		}
	}()
	got := 0
	for {
		m, err := r.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if m.Type == MsgPushDone {
			break
		}
		got++
	}
	if got != frames {
		t.Fatalf("received %d data frames before control, want %d", got, frames)
	}
	if err := r.Send(Message{Type: MsgDone}); err != nil {
		t.Fatal(err)
	}
	if m, err := s.Recv(); err != nil || m.Type != MsgDone {
		t.Fatalf("reply: %v %v", m, err)
	}
}

func TestDialStripedWithCompression(t *testing.T) {
	l, err := Listen("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	wrap := func(c Conn) (Conn, error) { return NewCompressed(c, 6) }
	accCh := make(chan *Striped, 1)
	go func() {
		c, err := AcceptStriped(l, wrap)
		if err != nil {
			t.Error(err)
			accCh <- nil
			return
		}
		accCh <- c
	}()
	s, err := DialStriped(l.Addr().String(), 2, wrap)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	r := <-accCh
	if r == nil {
		t.FailNow()
	}
	defer r.Close()
	payload := make([]byte, 4096) // zeros: maximally compressible
	if err := s.Send(Message{Type: MsgBlockData, Arg: 1, Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := s.Send(Message{Type: MsgIterEnd, Arg: 1}); err != nil {
		t.Fatal(err)
	}
	m, err := r.Recv()
	if err != nil || m.Type != MsgBlockData || len(m.Payload) != 4096 {
		t.Fatalf("recv %v %v", m, err)
	}
	for _, b := range m.Payload {
		if b != 0 {
			t.Fatal("payload corrupted through compression")
		}
	}
	if m, err = r.Recv(); err != nil || m.Type != MsgIterEnd {
		t.Fatalf("recv control %v %v", m, err)
	}
}

func TestExtentArgRoundTrip(t *testing.T) {
	for _, c := range []struct{ start, count int }{
		{0, 1}, {1, 1}, {1 << 30, 4096}, {(1 << 40) - 1, MaxExtentBlocks},
	} {
		s, n := ExtentSplit(ExtentArg(c.start, c.count))
		if s != c.start || n != c.count {
			t.Fatalf("round trip (%d,%d) -> (%d,%d)", c.start, c.count, s, n)
		}
	}
	for _, bad := range []struct{ start, count int }{
		{-1, 1}, {0, 0}, {0, MaxExtentBlocks + 1}, {1 << 40, 1},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("ExtentArg(%d,%d) did not panic", bad.start, bad.count)
				}
			}()
			ExtentArg(bad.start, bad.count)
		}()
	}
}

func TestStripedZeroStreamsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewStriped(nil) did not panic")
		}
	}()
	NewStriped(nil)
}

func ExampleStriped() {
	s, r := stripedPipes(2, 4)
	defer s.Close()
	defer r.Close()
	s.Send(Message{Type: MsgBlockData, Arg: 3, Payload: []byte("abc")})
	s.Send(Message{Type: MsgIterEnd, Arg: 1})
	m1, _ := r.Recv()
	m2, _ := r.Recv()
	fmt.Println(m1.Type, m2.Type)
	// Output: BLOCK_DATA ITER_END
}

func TestLatentAccountsLinkTime(t *testing.T) {
	a, b := NewPipe(64)
	const stall = 2 * time.Millisecond
	l := NewLatent(a, stall)
	defer l.Close()
	defer b.Close()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 10; i++ {
			if _, err := b.Recv(); err != nil {
				t.Errorf("recv: %v", err)
				return
			}
		}
	}()
	start := time.Now()
	for i := 0; i < 10; i++ {
		if err := l.Send(Message{Type: MsgBlockData, Arg: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	if elapsed := time.Since(start); elapsed < 10*stall {
		t.Fatalf("10 frames crossed a %v-per-frame link in %v", stall, elapsed)
	}
}
