package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
)

// Striped fans one logical Conn across several underlying connections so the
// migration data path is no longer serialized through a single ordered
// stream. Data frames (disk blocks, extents, memory pages) are striped
// round-robin across all streams; every other frame is a control frame,
// pinned to stream 0 so the protocol's phase signals keep a total order.
//
// Ordering across streams is re-established at data↔control transitions:
// Send broadcasts one MsgStripeBarrier fence on every stream before the
// first control frame after data and before the first data frame after a
// control frame, and Recv holds each stream at its fence until every stream
// has reached it. The guarantee the engine relies on is exactly the
// single-stream one:
//
//   - every data frame sent before a control frame is received before it;
//   - every data frame sent after a control frame is received after it.
//
// Data frames between two control frames may be received in any order, which
// is safe for the migration protocol: within one pre-copy iteration each
// block and page number appears at most once (they come from a bitmap scan),
// and iteration boundaries are control frames. Runs of control frames with
// no data between them — the destination's entire pull/ack direction — pay
// no fences at all: they are FIFO on stream 0 already.
//
// Data sent concurrently with a control frame has no defined order relative
// to it, just as two concurrent Sends on any Conn are unordered; the engine
// quiesces its worker pool before sending phase signals.
//
// A Striped over a single stream degenerates to a transparent passthrough:
// no barrier frames, wire-identical to the seed protocol.
//
// Each stream carries its own Meter; the aggregate implements the same
// BytesSent/BytesReceived/MessagesSent/MessagesReceived view one Meter
// provides, and PerStream exposes the per-stream counters.
type Striped struct {
	streams []*Meter

	rr     atomic.Uint64 // round-robin cursor for data frames
	sendMu sync.RWMutex  // RLock: data sends; Lock: fence+control sends
	seq    uint64        // fences broadcast; guarded by sendMu (write side)
	// dataSinceFence: a data frame went out after the last fence, so the
	// next control frame must fence first. fenceBeforeData: a control frame
	// went out, so the next data frame must fence first. Both transitions
	// fencing is what lets everything in between stay fence-free.
	dataSinceFence  atomic.Bool
	fenceBeforeData atomic.Bool

	recvOnce  sync.Once
	frames    chan Message
	done      chan struct{}
	closeOnce sync.Once
	bar       *recvBarrier

	// Reader-death accounting: one stream failing does not fail the logical
	// conn while other streams can still deliver (frames written before a
	// peer's close are valid and, per stream, ordered before its EOF).
	// Recv reports an error only once every reader is dead and the frame
	// buffer is drained — which makes "last control frame, then close"
	// teardowns deterministic instead of racing the idle streams' EOFs.
	deadMu   sync.Mutex
	dead     int
	firstErr error
	allDead  chan struct{}
}

// MaxStreams bounds a striped bundle: stream counts travel in single-byte
// wire fields (MsgStripeHello payload, the hostd announce).
const MaxStreams = 255

// IsDataFrame reports whether a frame carries bulk migration data — the
// frames a Striped conn may reorder between control frames, and the frames
// the destination's scatter pool may apply out of order. The two uses must
// agree, which is why there is exactly one copy of this predicate.
func IsDataFrame(t MsgType) bool {
	return t == MsgBlockData || t == MsgExtent || t == MsgMemPage
}

// NewStriped builds a logical connection over conns. conns[0] is the control
// stream; ownership of all conns passes to the Striped. With one conn the
// result is a transparent (but metered) passthrough.
func NewStriped(conns []Conn) *Striped {
	if len(conns) == 0 {
		panic("transport: striped over zero streams")
	}
	s := &Striped{
		streams: make([]*Meter, len(conns)),
		done:    make(chan struct{}),
		allDead: make(chan struct{}),
	}
	for i, c := range conns {
		s.streams[i] = NewMeter(c)
	}
	s.bar = newRecvBarrier(len(conns))
	return s
}

// Streams returns the number of underlying connections.
func (s *Striped) Streams() int { return len(s.streams) }

// PerStream returns the per-stream meters (index 0 is the control stream).
func (s *Striped) PerStream() []*Meter { return s.streams }

// BytesSent returns wire bytes sent across all streams, barriers included.
func (s *Striped) BytesSent() int64 { return s.sum((*Meter).BytesSent) }

// BytesReceived returns wire bytes received across all streams.
func (s *Striped) BytesReceived() int64 { return s.sum((*Meter).BytesReceived) }

// MessagesSent returns frames sent across all streams, barriers included.
func (s *Striped) MessagesSent() int64 { return s.sum((*Meter).MessagesSent) }

// MessagesReceived returns frames received across all streams.
func (s *Striped) MessagesReceived() int64 { return s.sum((*Meter).MessagesReceived) }

func (s *Striped) sum(f func(*Meter) int64) int64 {
	var t int64
	for _, m := range s.streams {
		t += f(m)
	}
	return t
}

// Send implements Conn. Data frames normally take a shared lock and one
// stream; the first data frame after a control frame, and any control frame
// after data, first fences every stream under the exclusive lock.
func (s *Striped) Send(m Message) error {
	if len(s.streams) == 1 {
		return s.streams[0].Send(m)
	}
	if IsDataFrame(m.Type) {
		if s.fenceBeforeData.Load() {
			s.sendMu.Lock()
			defer s.sendMu.Unlock()
			if s.fenceBeforeData.Load() { // not already fenced by a racing peer
				if err := s.fenceLocked(); err != nil {
					return err
				}
				s.fenceBeforeData.Store(false)
			}
			s.dataSinceFence.Store(true)
			i := int(s.rr.Add(1)-1) % len(s.streams)
			return s.streams[i].Send(m)
		}
		s.sendMu.RLock()
		defer s.sendMu.RUnlock()
		s.dataSinceFence.Store(true)
		i := int(s.rr.Add(1)-1) % len(s.streams)
		return s.streams[i].Send(m)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	if s.dataSinceFence.Load() {
		if err := s.fenceLocked(); err != nil {
			return err
		}
		s.dataSinceFence.Store(false)
	}
	s.fenceBeforeData.Store(true)
	return s.streams[0].Send(m)
}

// fenceLocked broadcasts one barrier frame on every stream. Caller holds the
// exclusive send lock.
func (s *Striped) fenceLocked() error {
	s.seq++
	for i, st := range s.streams {
		if err := st.Send(Message{Type: MsgStripeBarrier, Arg: s.seq}); err != nil {
			return fmt.Errorf("transport: stripe barrier on stream %d: %w", i, err)
		}
	}
	return nil
}

// Recv implements Conn, merging the streams under the fence discipline.
// Buffered frames are always delivered before a failure is reported.
func (s *Striped) Recv() (Message, error) {
	if len(s.streams) == 1 {
		return s.streams[0].Recv()
	}
	s.recvOnce.Do(s.startReaders)
	select {
	case m := <-s.frames:
		return m, nil
	default:
	}
	select {
	case m := <-s.frames:
		return m, nil
	case <-s.allDead:
		select {
		case m := <-s.frames:
			return m, nil
		default:
			return Message{}, s.recvError()
		}
	case <-s.done:
		select {
		case m := <-s.frames:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

func (s *Striped) recvError() error {
	s.deadMu.Lock()
	defer s.deadMu.Unlock()
	if s.firstErr == nil {
		return ErrClosed
	}
	return s.firstErr
}

// Close implements Conn: every stream is closed and pending Recvs fail.
func (s *Striped) Close() error {
	var first error
	for _, st := range s.streams {
		if err := st.Close(); err != nil && first == nil {
			first = err
		}
	}
	if len(s.streams) > 1 {
		s.bar.abort()
		s.closeOnce.Do(func() { close(s.done) })
	}
	return first
}

func (s *Striped) startReaders() {
	s.frames = make(chan Message, 4*len(s.streams))
	for i := range s.streams {
		go s.readStream(i)
	}
}

// readerDead records one reader's exit. The barrier is aborted (a fence can
// never complete once a stream stops arriving at it), and once the last
// reader is gone, Recv starts reporting the first error.
func (s *Striped) readerDead(err error) {
	s.deadMu.Lock()
	if err != nil && s.firstErr == nil {
		s.firstErr = err
	}
	s.dead++
	last := s.dead == len(s.streams)
	s.deadMu.Unlock()
	s.bar.abort()
	if last {
		close(s.allDead)
	}
}

// readStream pumps one stream into the merge channel. At a fence frame the
// reader parks until every stream has reached the fence; by then, every
// pre-fence frame of every stream has been pushed, and no post-fence frame
// can be pushed before. Combined with sender-side fencing at data↔control
// transitions, this delivers data-before-control and control-before-data
// exactly as a single ordered stream would.
func (s *Striped) readStream(i int) {
	c := s.streams[i]
	for {
		m, err := c.Recv()
		if err != nil {
			s.readerDead(fmt.Errorf("transport: stream %d: %w", i, err))
			return
		}
		if m.Type == MsgStripeBarrier {
			if !s.bar.await() {
				s.readerDead(nil) // fence aborted: this stream stops delivering
				return
			}
			continue
		}
		if !s.push(m) {
			s.readerDead(nil) // conn closed under us
			return
		}
	}
}

// push delivers one frame, returning false if the conn closed meanwhile.
func (s *Striped) push(m Message) bool {
	select {
	case s.frames <- m:
		return true
	case <-s.done:
		return false
	}
}

// recvBarrier is a reusable symmetric barrier for the per-stream readers:
// each fence completes when all n readers have arrived, releasing them
// together into the next phase.
type recvBarrier struct {
	mu      sync.Mutex
	cond    *sync.Cond
	n       int
	arrived int
	phase   uint64
	aborted bool
}

func newRecvBarrier(n int) *recvBarrier {
	b := &recvBarrier{n: n}
	b.cond = sync.NewCond(&b.mu)
	return b
}

// await parks the caller at the current fence until all n readers arrive.
// Returns false if the barrier was aborted.
func (b *recvBarrier) await() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.arrived++
	if b.arrived == b.n {
		b.arrived = 0
		b.phase++
		b.cond.Broadcast()
		return !b.aborted
	}
	p := b.phase
	for b.phase == p && !b.aborted {
		b.cond.Wait()
	}
	return !b.aborted
}

// abort permanently unblocks the barrier; all waiters return false.
func (b *recvBarrier) abort() {
	b.mu.Lock()
	b.aborted = true
	b.cond.Broadcast()
	b.mu.Unlock()
}

// DialStriped opens n TCP connections to addr and bundles them as one
// Striped conn. Each connection is labeled with a raw MsgStripeHello frame
// (stream index in Arg, total count in the payload) so the acceptor can
// reassemble the bundle regardless of accept order. wrap, when non-nil,
// decorates each connection (e.g. with compression) after the label is sent;
// both endpoints must wrap symmetrically.
func DialStriped(addr string, n int, wrap func(Conn) (Conn, error)) (*Striped, error) {
	if n < 1 || n > MaxStreams {
		return nil, fmt.Errorf("transport: dial striped: %d streams outside [1,%d]", n, MaxStreams)
	}
	conn0, err := Dial(addr)
	if err != nil {
		return nil, err
	}
	if err := sendStripeHello(conn0, 0, n); err != nil {
		conn0.Close()
		return nil, err
	}
	if wrap != nil {
		w, err := wrap(conn0)
		if err != nil {
			conn0.Close()
			return nil, err
		}
		conn0 = w
	}
	return DialExtraStreams(addr, conn0, n, wrap)
}

// DialExtraStreams dials streams 1..n-1 of a bundle whose stream 0 the
// caller already established (and identified through its own protocol, as
// hostd's announce does), labels each with MsgStripeHello, and bundles
// everything. On error every connection — conn0 included — is closed.
func DialExtraStreams(addr string, conn0 Conn, n int, wrap func(Conn) (Conn, error)) (*Striped, error) {
	if n < 1 || n > MaxStreams {
		conn0.Close()
		return nil, fmt.Errorf("transport: %d streams outside [1,%d]", n, MaxStreams)
	}
	conns := make([]Conn, 1, n)
	conns[0] = conn0
	fail := func(err error) (*Striped, error) {
		for _, c := range conns {
			c.Close()
		}
		return nil, err
	}
	for i := 1; i < n; i++ {
		c, err := Dial(addr)
		if err != nil {
			return fail(err)
		}
		conns = append(conns, c)
		if err := sendStripeHello(c, i, n); err != nil {
			return fail(err)
		}
		if wrap != nil {
			w, err := wrap(c)
			if err != nil {
				return fail(err)
			}
			conns[i] = w
		}
	}
	return NewStriped(conns), nil
}

// sendStripeHello labels one connection of an n-wide bundle.
func sendStripeHello(c Conn, idx, n int) error {
	if err := c.Send(Message{Type: MsgStripeHello, Arg: uint64(idx), Payload: []byte{byte(n)}}); err != nil {
		return fmt.Errorf("transport: stripe hello %d: %w", idx, err)
	}
	return nil
}

// recvStripeHello reads and validates one connection's label.
func recvStripeHello(c Conn) (idx, total int, err error) {
	hello, err := c.Recv()
	if err != nil {
		return 0, 0, fmt.Errorf("transport: stripe hello: %w", err)
	}
	if hello.Type != MsgStripeHello || len(hello.Payload) != 1 {
		return 0, 0, fmt.Errorf("transport: expected STRIPE_HELLO, got %v", hello.Type)
	}
	return int(hello.Arg), int(hello.Payload[0]), nil
}

// AcceptStriped accepts one striped bundle on l: the first connection's
// MsgStripeHello announces the stream count, and further connections are
// accepted until every index is present. wrap mirrors DialStriped's.
func AcceptStriped(l net.Listener, wrap func(Conn) (Conn, error)) (*Striped, error) {
	c, err := Accept(l)
	if err != nil {
		return nil, err
	}
	idx, total, err := recvStripeHello(c)
	if err == nil && (total < 1 || idx < 0 || idx >= total) {
		err = fmt.Errorf("transport: stripe hello idx=%d total=%d inconsistent", idx, total)
	}
	if err != nil {
		c.Close()
		return nil, err
	}
	if wrap != nil {
		w, werr := wrap(c)
		if werr != nil {
			c.Close()
			return nil, werr
		}
		c = w
	}
	return acceptRemaining(l, map[int]Conn{idx: c}, total, wrap)
}

// AcceptExtraStreams accepts streams 1..n-1 of a bundle whose stream 0 the
// caller already holds (identified through its own protocol) and bundles
// them. On error every connection — conn0 included — is closed.
func AcceptExtraStreams(l net.Listener, conn0 Conn, n int, wrap func(Conn) (Conn, error)) (*Striped, error) {
	if n < 1 || n > MaxStreams {
		conn0.Close()
		return nil, fmt.Errorf("transport: %d streams outside [1,%d]", n, MaxStreams)
	}
	return acceptRemaining(l, map[int]Conn{0: conn0}, n, wrap)
}

// acceptRemaining collects labeled connections from l until indices 0..n-1
// are all present, starting from the already-claimed ones in got.
func acceptRemaining(l net.Listener, got map[int]Conn, n int, wrap func(Conn) (Conn, error)) (*Striped, error) {
	fail := func(err error) (*Striped, error) {
		for _, c := range got {
			c.Close()
		}
		return nil, err
	}
	for len(got) < n {
		c, err := Accept(l)
		if err != nil {
			return fail(err)
		}
		idx, total, err := recvStripeHello(c)
		if err == nil {
			switch {
			case total != n:
				err = fmt.Errorf("transport: stripe hello names %d streams, bundle has %d", total, n)
			case idx < 0 || idx >= n:
				err = fmt.Errorf("transport: stripe index %d outside bundle of %d", idx, n)
			case got[idx] != nil:
				err = fmt.Errorf("transport: duplicate stripe index %d", idx)
			}
		}
		if err != nil {
			c.Close()
			return fail(err)
		}
		if wrap != nil {
			w, werr := wrap(c)
			if werr != nil {
				c.Close()
				return fail(werr)
			}
			c = w
		}
		got[idx] = c
	}
	conns := make([]Conn, n)
	for i := range conns {
		conns[i] = got[i]
	}
	return NewStriped(conns), nil
}
