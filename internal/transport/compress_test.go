package transport

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func compressedPair(t *testing.T) (*Compressed, *Compressed, *Meter) {
	t.Helper()
	a, b := NewPipe(64)
	meter := NewMeter(a)
	ca, err := NewCompressed(meter, 0)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := NewCompressed(b, 0)
	if err != nil {
		t.Fatal(err)
	}
	return ca, cb, meter
}

func TestCompressedRoundTrip(t *testing.T) {
	ca, cb, _ := compressedPair(t)
	payloads := [][]byte{
		nil,
		{},
		[]byte("hello"),
		bytes.Repeat([]byte{0}, 4096),         // highly compressible
		bytes.Repeat([]byte("abcd1234"), 512), // compressible
		func() []byte { // incompressible
			b := make([]byte, 4096)
			for i := range b {
				b[i] = byte(i*2654435761 + i>>3)
			}
			return b
		}(),
	}
	for i, p := range payloads {
		want := Message{Type: MsgBlockData, Arg: uint64(i), Payload: p}
		if err := ca.Send(want); err != nil {
			t.Fatalf("payload %d: send: %v", i, err)
		}
		got, err := cb.Recv()
		if err != nil {
			t.Fatalf("payload %d: recv: %v", i, err)
		}
		if got.Arg != want.Arg || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("payload %d: round trip mismatch (%d vs %d bytes)", i, len(got.Payload), len(want.Payload))
		}
	}
	ca.Close()
	if _, err := ca.Recv(); !errors.Is(err, ErrClosed) {
		t.Fatalf("recv after close: %v", err)
	}
}

func TestCompressedShrinksZeroBlocks(t *testing.T) {
	ca, cb, meter := compressedPair(t)
	const n = 64
	payload := make([]byte, 4096) // a zero block, the common sparse case
	go func() {
		for i := 0; i < n; i++ {
			ca.Send(Message{Type: MsgBlockData, Arg: uint64(i), Payload: payload})
		}
	}()
	for i := 0; i < n; i++ {
		if _, err := cb.Recv(); err != nil {
			t.Fatal(err)
		}
	}
	raw := int64(n * (4096 + headerLen))
	if meter.BytesSent() > raw/10 {
		t.Fatalf("compressed wire bytes %d, raw would be %d — no compression happened", meter.BytesSent(), raw)
	}
}

func TestCompressedIncompressibleCostsOneByte(t *testing.T) {
	ca, cb, meter := compressedPair(t)
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte((i*73 + i*i*31) ^ (i >> 2)) // poorly compressible
	}
	before := meter.BytesSent()
	go ca.Send(Message{Type: MsgBlockData, Payload: payload})
	m, err := cb.Recv()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m.Payload, payload) {
		t.Fatal("payload corrupted")
	}
	wire := meter.BytesSent() - before
	// either deflate managed to shrink it, or we paid exactly 1 marker byte
	if wire > int64(len(payload)+headerLen+1) {
		t.Fatalf("incompressible payload cost %d wire bytes (max %d)", wire, len(payload)+headerLen+1)
	}
}

func TestCompressedRejectsGarbageMarker(t *testing.T) {
	a, b := NewPipe(4)
	cb, _ := NewCompressed(b, 0)
	a.Send(Message{Type: MsgBlockData, Payload: []byte{99, 1, 2}})
	if _, err := cb.Recv(); err == nil {
		t.Fatal("garbage marker accepted")
	}
	a.Send(Message{Type: MsgBlockData, Payload: []byte{compressDeflate, 0xff, 0xff}})
	if _, err := cb.Recv(); err == nil {
		t.Fatal("corrupt deflate stream accepted")
	}
}

func TestQuickCompressedRoundTrip(t *testing.T) {
	ca, cb, _ := compressedPair(t)
	f := func(payload []byte, arg uint64) bool {
		errc := make(chan error, 1)
		go func() { errc <- ca.Send(Message{Type: MsgBlockData, Arg: arg, Payload: payload}) }()
		m, err := cb.Recv()
		if err != nil || <-errc != nil {
			return false
		}
		if len(payload) == 0 {
			return len(m.Payload) == 0
		}
		return m.Arg == arg && bytes.Equal(m.Payload, payload)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultConnSend(t *testing.T) {
	a, b := NewPipe(16)
	fa := NewFaultConn(a, 3, 0)
	for i := 0; i < 3; i++ {
		if err := fa.Send(Message{Type: MsgBlockData}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := fa.Send(Message{Type: MsgBlockData}); !errors.Is(err, ErrInjected) {
		t.Fatalf("4th send: %v", err)
	}
	// the link is dead for the peer too
	if err := b.Send(Message{Type: MsgDone}); !errors.Is(err, ErrClosed) {
		t.Fatalf("peer send after fault: %v", err)
	}
}

func TestFaultConnRecv(t *testing.T) {
	a, b := NewPipe(16)
	fb := NewFaultConn(b, 0, 1)
	a.Send(Message{Type: MsgBlockData})
	a.Send(Message{Type: MsgBlockData})
	if _, err := fb.Recv(); err != nil {
		t.Fatal(err)
	}
	if _, err := fb.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("2nd recv: %v", err)
	}
	fb.Close()
}
