package transport

import (
	"bufio"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"bbmig/internal/clock"
)

// Conn is a bidirectional, ordered message stream between the two migration
// daemons. Send and Recv may be used from different goroutines; concurrent
// Sends are serialized internally (the post-copy pusher and the pull-reply
// path share one connection, like the paper's single blkd socket).
type Conn interface {
	// Send writes one message.
	Send(m Message) error
	// Recv reads the next message, blocking until one arrives.
	Recv() (Message, error)
	// Close tears down the connection; pending Recv calls fail.
	Close() error
}

// streamConn frames messages over any byte stream.
type streamConn struct {
	sendMu sync.Mutex
	w      *bufio.Writer
	r      *bufio.Reader
	c      io.Closer
	buf    []byte // reused encode buffer, guarded by sendMu
}

// NewStream wraps a byte stream (typically a *net.TCPConn) as a Conn.
func NewStream(rw io.ReadWriteCloser) Conn {
	return &streamConn{
		w: bufio.NewWriterSize(rw, 256<<10),
		r: bufio.NewReaderSize(rw, 256<<10),
		c: rw,
	}
}

// Send implements Conn. Each message is flushed immediately: migration
// control messages are latency-sensitive (a buffered SUSPEND would inflate
// downtime).
func (s *streamConn) Send(m Message) error {
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	b, err := encode(s.buf[:0], m)
	if err != nil {
		return err
	}
	s.buf = b[:0]
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("transport: send %v: %w", m.Type, err)
	}
	if err := s.w.Flush(); err != nil {
		return fmt.Errorf("transport: flush %v: %w", m.Type, err)
	}
	return nil
}

// Recv implements Conn.
func (s *streamConn) Recv() (Message, error) { return readMessage(s.r) }

// Close implements Conn.
func (s *streamConn) Close() error { return s.c.Close() }

// Dial connects to a destination migration daemon over TCP.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // control messages must not wait for Nagle
	}
	return NewStream(c), nil
}

// Listen accepts one migration connection on addr and returns it together
// with the listener's bound address (useful with ":0").
func Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return l, nil
}

// Accept waits for one connection on l and wraps it as a Conn.
func Accept(l net.Listener) (Conn, error) {
	c, err := l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewStream(c), nil
}

// Meter counts the wire bytes crossing a Conn in each direction. The
// migration engine reads it to report the paper's "amount of migrated data"
// metric.
type Meter struct {
	inner     Conn
	sent      atomic.Int64
	received  atomic.Int64
	sentMsgs  atomic.Int64
	recvdMsgs atomic.Int64
}

// NewMeter wraps inner with byte accounting.
func NewMeter(inner Conn) *Meter { return &Meter{inner: inner} }

// Send implements Conn.
func (m *Meter) Send(msg Message) error {
	if err := m.inner.Send(msg); err != nil {
		return err
	}
	m.sent.Add(int64(msg.FrameSize()))
	m.sentMsgs.Add(1)
	return nil
}

// Recv implements Conn.
func (m *Meter) Recv() (Message, error) {
	msg, err := m.inner.Recv()
	if err != nil {
		return msg, err
	}
	m.received.Add(int64(msg.FrameSize()))
	m.recvdMsgs.Add(1)
	return msg, nil
}

// Close implements Conn.
func (m *Meter) Close() error { return m.inner.Close() }

// BytesSent returns the cumulative wire bytes sent.
func (m *Meter) BytesSent() int64 { return m.sent.Load() }

// BytesReceived returns the cumulative wire bytes received.
func (m *Meter) BytesReceived() int64 { return m.received.Load() }

// MessagesSent returns the number of messages sent.
func (m *Meter) MessagesSent() int64 { return m.sentMsgs.Load() }

// MessagesReceived returns the number of messages received.
func (m *Meter) MessagesReceived() int64 { return m.recvdMsgs.Load() }

// Shaped applies a token-bucket bandwidth cap to a Conn's send path,
// implementing the paper's migration rate limit. The limiter may be shared
// between several Conns to model one capped NIC.
type Shaped struct {
	inner   Conn
	limiter *clock.RateLimiter
}

// NewShaped wraps inner so every Send first acquires the message's frame
// size from limiter.
func NewShaped(inner Conn, limiter *clock.RateLimiter) *Shaped {
	return &Shaped{inner: inner, limiter: limiter}
}

// Send implements Conn.
func (s *Shaped) Send(m Message) error {
	s.limiter.Wait(m.FrameSize())
	return s.inner.Send(m)
}

// Recv implements Conn.
func (s *Shaped) Recv() (Message, error) { return s.inner.Recv() }

// Close implements Conn.
func (s *Shaped) Close() error { return s.inner.Close() }
