package transport

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"

	"bbmig/internal/clock"
)

// Conn is a bidirectional, ordered message stream between the two migration
// daemons. Send and Recv may be used from different goroutines; concurrent
// Sends are serialized internally (the post-copy pusher and the pull-reply
// path share one connection, like the paper's single blkd socket).
type Conn interface {
	// Send writes one message.
	Send(m Message) error
	// Recv reads the next message, blocking until one arrives.
	Recv() (Message, error)
	// Close tears down the connection; pending Recv calls fail.
	Close() error
}

// streamConn frames messages over any byte stream.
type streamConn struct {
	sendMu sync.Mutex
	w      io.Writer
	r      *bufio.Reader
	c      io.Closer
	hdr    [headerLen]byte // reused send header, guarded by sendMu
	small  []byte          // staging buffer for small frames, guarded by sendMu
	rhdr   [headerLen]byte // reused recv header (Recv is single-consumer)
}

// vectoredMin is the payload size at which Send switches from staging the
// frame into one contiguous buffer to a vectored header+payload write
// (writev on a TCP conn). Below it, the copy is cheaper than a second
// iovec; above it, the copy would dominate.
const vectoredMin = 1 << 10

// NewStream wraps a byte stream (typically a *net.TCPConn) as a Conn.
func NewStream(rw io.ReadWriteCloser) Conn {
	return &streamConn{
		w: rw,
		r: bufio.NewReaderSize(rw, 256<<10),
		c: rw,
	}
}

// Send implements Conn. Each message reaches the stream before Send
// returns — migration control messages are latency-sensitive (a buffered
// SUSPEND would inflate downtime) — and the payload is only borrowed: the
// caller owns it again, for reuse or release, as soon as Send returns.
// Small frames are staged into one contiguous write; large payloads go out
// as a vectored header+payload pair, which on a TCP conn is a single
// writev instead of two small writes defeating segment coalescing.
func (s *streamConn) Send(m Message) error {
	if len(m.Payload) > MaxPayload {
		return fmt.Errorf("transport: payload %d exceeds max %d", len(m.Payload), MaxPayload)
	}
	s.sendMu.Lock()
	defer s.sendMu.Unlock()
	hdr := s.hdr[:]
	hdr[0] = byte(m.Type)
	binary.LittleEndian.PutUint64(hdr[1:], m.Arg)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(m.Payload)))
	if len(m.Payload) >= vectoredMin {
		bufs := net.Buffers{hdr, m.Payload}
		if _, err := bufs.WriteTo(s.w); err != nil {
			return fmt.Errorf("transport: send %v: %w", m.Type, err)
		}
		return nil
	}
	if s.small == nil {
		s.small = make([]byte, 0, headerLen+vectoredMin)
	}
	b := append(s.small[:0], hdr...)
	b = append(b, m.Payload...)
	if _, err := s.w.Write(b); err != nil {
		return fmt.Errorf("transport: send %v: %w", m.Type, err)
	}
	return nil
}

// Recv implements Conn.
func (s *streamConn) Recv() (Message, error) { return readMessageHdr(s.r, &s.rhdr) }

// Close implements Conn.
func (s *streamConn) Close() error { return s.c.Close() }

// Dial connects to a destination migration daemon over TCP.
func Dial(addr string) (Conn, error) {
	c, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", addr, err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true) // control messages must not wait for Nagle
	}
	return NewStream(c), nil
}

// Listen accepts one migration connection on addr and returns it together
// with the listener's bound address (useful with ":0").
func Listen(addr string) (net.Listener, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	return l, nil
}

// Accept waits for one connection on l and wraps it as a Conn.
func Accept(l net.Listener) (Conn, error) {
	c, err := l.Accept()
	if err != nil {
		return nil, fmt.Errorf("transport: accept: %w", err)
	}
	if tc, ok := c.(*net.TCPConn); ok {
		tc.SetNoDelay(true)
	}
	return NewStream(c), nil
}

// Meter counts the wire bytes crossing a Conn in each direction. The
// migration engine reads it to report the paper's "amount of migrated data"
// metric.
type Meter struct {
	inner     Conn
	sent      atomic.Int64
	received  atomic.Int64
	sentMsgs  atomic.Int64
	recvdMsgs atomic.Int64
}

// NewMeter wraps inner with byte accounting.
func NewMeter(inner Conn) *Meter { return &Meter{inner: inner} }

// Send implements Conn.
func (m *Meter) Send(msg Message) error {
	if err := m.inner.Send(msg); err != nil {
		return err
	}
	m.sent.Add(int64(msg.FrameSize()))
	m.sentMsgs.Add(1)
	return nil
}

// Recv implements Conn.
func (m *Meter) Recv() (Message, error) {
	msg, err := m.inner.Recv()
	if err != nil {
		return msg, err
	}
	m.received.Add(int64(msg.FrameSize()))
	m.recvdMsgs.Add(1)
	return msg, nil
}

// Close implements Conn.
func (m *Meter) Close() error { return m.inner.Close() }

// BytesSent returns the cumulative wire bytes sent.
func (m *Meter) BytesSent() int64 { return m.sent.Load() }

// BytesReceived returns the cumulative wire bytes received.
func (m *Meter) BytesReceived() int64 { return m.received.Load() }

// MessagesSent returns the number of messages sent.
func (m *Meter) MessagesSent() int64 { return m.sentMsgs.Load() }

// MessagesReceived returns the number of messages received.
func (m *Meter) MessagesReceived() int64 { return m.recvdMsgs.Load() }

// Shaped applies a token-bucket bandwidth cap to a Conn's send path,
// implementing the paper's migration rate limit. The limiter may be shared
// between several Conns to model one capped NIC.
type Shaped struct {
	inner   Conn
	limiter *clock.RateLimiter
}

// NewShaped wraps inner so every Send first acquires the message's frame
// size from limiter.
func NewShaped(inner Conn, limiter *clock.RateLimiter) *Shaped {
	return &Shaped{inner: inner, limiter: limiter}
}

// Send implements Conn.
func (s *Shaped) Send(m Message) error {
	s.limiter.Wait(m.FrameSize())
	return s.inner.Send(m)
}

// Recv implements Conn.
func (s *Shaped) Recv() (Message, error) { return s.inner.Recv() }

// Close implements Conn.
func (s *Shaped) Close() error { return s.inner.Close() }
