package transport

import (
	"errors"
	"testing"
)

// TestFaultCutOrdering: a FaultCut after N sends delivers exactly N frames,
// loses the N+1th, and kills both directions — deterministically, every run.
func TestFaultCutOrdering(t *testing.T) {
	const n = 5
	a, b := NewPipe(16)
	fa := NewScriptedFaultConn(a, Fault{AfterSends: n, Kind: FaultCut})
	for i := 0; i < n; i++ {
		if err := fa.Send(Message{Type: MsgBlockData, Arg: uint64(i)}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := fa.Send(Message{Type: MsgBlockData, Arg: n}); !errors.Is(err, ErrInjected) {
		t.Fatalf("send %d: got %v, want ErrInjected", n, err)
	}
	// Exactly the delivered frames arrive, in order, then the close.
	for i := 0; i < n; i++ {
		m, err := b.Recv()
		if err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
		if m.Arg != uint64(i) {
			t.Fatalf("recv %d: got frame %d", i, m.Arg)
		}
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("the cut frame was delivered")
	}
	// The dead conn stays dead in both directions.
	if err := fa.Send(Message{Type: MsgBlockData}); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut send: %v", err)
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("post-cut recv: %v", err)
	}
}

// TestFaultRecvTrigger: recv-side triggers count successful receives and cut
// the link on the next attempt without consuming a frame.
func TestFaultRecvTrigger(t *testing.T) {
	a, b := NewPipe(16)
	fb := NewScriptedFaultConn(b, Fault{AfterRecvs: 2, Kind: FaultCut})
	for i := 0; i < 3; i++ {
		if err := a.Send(Message{Type: MsgMemPage, Arg: uint64(i)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if _, err := fb.Recv(); err != nil {
			t.Fatalf("recv %d: %v", i, err)
		}
	}
	if _, err := fb.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd recv: got %v, want ErrInjected", err)
	}
	// The cut closed the underlying pipe: the peer notices.
	if err := a.Send(Message{Type: MsgMemPage}); err == nil {
		t.Fatal("peer send succeeded after recv-side cut")
	}
}

// TestFaultHalfClose: sends die at the trigger, receives keep working — the
// one-sided failure a resumable source must still notice and recover from.
func TestFaultHalfClose(t *testing.T) {
	a, b := NewPipe(16)
	fa := NewScriptedFaultConn(a, Fault{AfterSends: 1, Kind: FaultHalfClose})
	if err := fa.Send(Message{Type: MsgBlockData, Arg: 1}); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send(Message{Type: MsgBlockData, Arg: 2}); !errors.Is(err, ErrInjected) {
		t.Fatalf("send after half-close: %v", err)
	}
	// Receive direction still works: the peer can deliver.
	if err := b.Send(Message{Type: MsgPullRequest, Arg: 9}); err != nil {
		t.Fatal(err)
	}
	m, err := fa.Recv()
	if err != nil || m.Arg != 9 {
		t.Fatalf("recv over half-closed conn: %v %v", m, err)
	}
	// And the send side stays dead.
	if err := fa.Send(Message{Type: MsgBlockData, Arg: 3}); !errors.Is(err, ErrInjected) {
		t.Fatalf("second send after half-close: %v", err)
	}
}

// TestFaultTruncate: the triggering frame arrives with its payload cut to
// half length — a frame severed mid-extent — and the link then dies.
func TestFaultTruncate(t *testing.T) {
	a, b := NewPipe(16)
	fa := NewScriptedFaultConn(a, Fault{AfterSends: 1, Kind: FaultTruncate})
	payload := make([]byte, 4096)
	if err := fa.Send(Message{Type: MsgExtent, Arg: ExtentArg(0, 1), Payload: payload}); err != nil {
		t.Fatal(err)
	}
	if err := fa.Send(Message{Type: MsgExtent, Arg: ExtentArg(4, 2), Payload: payload}); !errors.Is(err, ErrInjected) {
		t.Fatalf("truncated send: %v", err)
	}
	if m, err := b.Recv(); err != nil || len(m.Payload) != 4096 {
		t.Fatalf("clean frame: %d bytes, %v", len(m.Payload), err)
	}
	m, err := b.Recv()
	if err != nil {
		t.Fatalf("truncated frame lost entirely: %v", err)
	}
	if len(m.Payload) != 2048 {
		t.Fatalf("truncated frame carries %d bytes, want 2048", len(m.Payload))
	}
	if _, err := b.Recv(); err == nil {
		t.Fatal("link survived the truncation")
	}
}

// TestFaultScriptSequence: multiple faults on one conn fire in script order
// (half-close first, then a full cut on the receive side).
func TestFaultScriptSequence(t *testing.T) {
	a, b := NewPipe(16)
	fa := NewScriptedFaultConn(a,
		Fault{AfterSends: 2, Kind: FaultHalfClose},
		Fault{AfterRecvs: 1, Kind: FaultCut},
	)
	for i := 0; i < 2; i++ {
		if err := fa.Send(Message{Type: MsgBlockData}); err != nil {
			t.Fatal(err)
		}
	}
	if err := fa.Send(Message{Type: MsgBlockData}); !errors.Is(err, ErrInjected) {
		t.Fatalf("half-close trigger: %v", err)
	}
	if err := b.Send(Message{Type: MsgPullRequest}); err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Recv(); err != nil {
		t.Fatalf("recv before second fault: %v", err)
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("second fault: %v", err)
	}
	if err := fa.Send(Message{Type: MsgBlockData}); !errors.Is(err, ErrInjected) {
		t.Fatal("conn alive after full cut")
	}
}

// TestLegacyFaultConnSemantics: the one-shot constructor still means "N
// operations succeed, the next fails and severs".
func TestLegacyFaultConnSemantics(t *testing.T) {
	a, _ := NewPipe(16)
	fa := NewFaultConn(a, 3, 0)
	for i := 0; i < 3; i++ {
		if err := fa.Send(Message{Type: MsgBlockData}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	if err := fa.Send(Message{Type: MsgBlockData}); !errors.Is(err, ErrInjected) {
		t.Fatalf("4th send: %v", err)
	}
}

// TestInjectorEpochs: the injector applies scripts to successive
// connections in order and leaves later epochs clean.
func TestInjectorEpochs(t *testing.T) {
	inj := NewInjector(
		[]Fault{{AfterSends: 1, Kind: FaultCut}},
		nil,
	)
	a1, _ := NewPipe(4)
	c1 := inj.Wrap(a1)
	if _, ok := c1.(*FaultConn); !ok {
		t.Fatal("epoch 0 not fault-wrapped")
	}
	a2, b2 := NewPipe(4)
	c2 := inj.Wrap(a2)
	if _, ok := c2.(*FaultConn); ok {
		t.Fatal("epoch 1 should run clean")
	}
	a3, _ := NewPipe(4)
	c3 := inj.Wrap(a3)
	if _, ok := c3.(*FaultConn); ok {
		t.Fatal("epochs past the script should run clean")
	}
	if inj.Epochs() != 3 {
		t.Fatalf("injector wrapped %d epochs, want 3", inj.Epochs())
	}
	// sanity: the clean epoch passes traffic
	if err := c2.Send(Message{Type: MsgBlockData, Arg: 7}); err != nil {
		t.Fatal(err)
	}
	if m, err := b2.Recv(); err != nil || m.Arg != 7 {
		t.Fatalf("clean epoch: %v %v", m, err)
	}
}

// TestSessionTokenAndResumeFrames covers the session handshake primitives:
// token uniqueness, frame round-trip, and epoch/token validation.
func TestSessionTokenAndResumeFrames(t *testing.T) {
	t1, err := NewSessionToken()
	if err != nil {
		t.Fatal(err)
	}
	t2, err := NewSessionToken()
	if err != nil {
		t.Fatal(err)
	}
	if t1 == t2 {
		t.Fatal("two minted tokens collide")
	}
	m := ResumeFrame(t1, 3)
	epoch, err := ParseResume(m, t1, 2)
	if err != nil || epoch != 3 {
		t.Fatalf("ParseResume: %d, %v", epoch, err)
	}
	if _, err := ParseResume(m, t2, 2); err == nil {
		t.Fatal("wrong token accepted")
	}
	if _, err := ParseResume(m, t1, 3); err == nil {
		t.Fatal("stale epoch accepted")
	}
	if _, err := ParseResume(Message{Type: MsgHello}, t1, 0); err == nil {
		t.Fatal("non-resume frame accepted")
	}
	if _, err := TokenFromBytes([]byte{1, 2, 3}); err == nil {
		t.Fatal("short token accepted")
	}
}

// TestSwappableRebind: a rebind closes the old conn and routes subsequent
// traffic over the new one.
func TestSwappableRebind(t *testing.T) {
	a1, b1 := NewPipe(4)
	sw := NewSwappable(a1)
	if err := sw.Send(Message{Type: MsgBlockData, Arg: 1}); err != nil {
		t.Fatal(err)
	}
	if m, _ := b1.Recv(); m.Arg != 1 {
		t.Fatal("pre-rebind frame misrouted")
	}
	a2, b2 := NewPipe(4)
	sw.Rebind(a2)
	if _, err := b1.Recv(); err == nil {
		t.Fatal("old conn still open after rebind")
	}
	if err := sw.Send(Message{Type: MsgBlockData, Arg: 2}); err != nil {
		t.Fatal(err)
	}
	if m, _ := b2.Recv(); m.Arg != 2 {
		t.Fatal("post-rebind frame misrouted")
	}
	if sw.Current() != a2 {
		t.Fatal("Current does not report the rebound conn")
	}
}

// TestIsConnError classifies retryable link failures vs protocol errors.
func TestIsConnError(t *testing.T) {
	for _, err := range []error{ErrInjected, ErrClosed} {
		if !IsConnError(err) {
			t.Errorf("%v should be a conn error", err)
		}
	}
	if IsConnError(nil) {
		t.Error("nil classified as conn error")
	}
	if IsConnError(errors.New("core: protocol violation")) {
		t.Error("generic error classified as conn error")
	}
}

// TestFaultHalfCloseOnRecv: armed via AfterRecvs, a half-close kills only
// the receive direction; sends keep flowing.
func TestFaultHalfCloseOnRecv(t *testing.T) {
	a, b := NewPipe(16)
	fa := NewScriptedFaultConn(a, Fault{AfterRecvs: 1, Kind: FaultHalfClose})
	if err := b.Send(Message{Type: MsgPullRequest, Arg: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := fa.Recv(); err != nil {
		t.Fatalf("recv before trigger: %v", err)
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("recv at trigger: %v", err)
	}
	if _, err := fa.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatalf("recv stays dead: %v", err)
	}
	// Send direction survives.
	if err := fa.Send(Message{Type: MsgBlockData, Arg: 7}); err != nil {
		t.Fatalf("send over recv-half-closed conn: %v", err)
	}
	if m, err := b.Recv(); err != nil || m.Arg != 7 {
		t.Fatalf("peer recv: %v %v", m, err)
	}
}

// TestFaultTruncateOnRecv: armed via AfterRecvs, the triggering frame is
// read truncated and the link then dies.
func TestFaultTruncateOnRecv(t *testing.T) {
	a, b := NewPipe(16)
	fb := NewScriptedFaultConn(b, Fault{AfterRecvs: 1, Kind: FaultTruncate})
	payload := make([]byte, 4096)
	for i := 0; i < 2; i++ {
		if err := a.Send(Message{Type: MsgExtent, Payload: payload}); err != nil {
			t.Fatal(err)
		}
	}
	if m, err := fb.Recv(); err != nil || len(m.Payload) != 4096 {
		t.Fatalf("clean frame: %d bytes, %v", len(m.Payload), err)
	}
	m, err := fb.Recv()
	if err != nil {
		t.Fatalf("truncated frame lost entirely: %v", err)
	}
	if len(m.Payload) != 2048 {
		t.Fatalf("truncated frame carries %d bytes, want 2048", len(m.Payload))
	}
	if _, err := fb.Recv(); !errors.Is(err, ErrInjected) {
		t.Fatal("link survived the recv truncation")
	}
}
