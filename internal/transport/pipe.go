package transport

import (
	"errors"
	"sync"
)

// ErrClosed is returned by pipe operations after Close.
var ErrClosed = errors.New("transport: connection closed")

// pipeConn is one end of an in-process duplex message pipe. Tests and
// examples use pipes to run a full source+destination migration in a single
// process without sockets.
type pipeConn struct {
	send chan<- Message
	recv <-chan Message

	mu     sync.Mutex
	closed chan struct{}
	peer   *pipeConn
}

// NewPipe returns two connected Conns. Messages sent on one are received on
// the other in order. The buffer bounds in-flight messages per direction;
// a small buffer (e.g. 64) approximates TCP's bounded window so senders
// experience back-pressure, which the engine's pipelining must tolerate.
func NewPipe(buffer int) (Conn, Conn) {
	if buffer < 1 {
		buffer = 1
	}
	ab := make(chan Message, buffer)
	ba := make(chan Message, buffer)
	a := &pipeConn{send: ab, recv: ba, closed: make(chan struct{})}
	b := &pipeConn{send: ba, recv: ab, closed: make(chan struct{})}
	a.peer, b.peer = b, a
	return a, b
}

// Send implements Conn.
func (p *pipeConn) Send(m Message) error {
	if len(m.Payload) > MaxPayload {
		return errors.New("transport: payload too large")
	}
	// Copy the payload into a pooled buffer: the engine reuses buffers, and
	// a real socket would have serialized the bytes at send time. The copy
	// is what makes Send borrow-only on pipes too — the receiver gets its
	// own pooled buffer, released (or not) under the usual Recv contract.
	if len(m.Payload) > 0 {
		cp := GetBuf(len(m.Payload))
		copy(cp, m.Payload)
		m.Payload = cp
	} else if m.Payload != nil {
		m.Payload = []byte{}
	}
	// Check for closure first: with buffer space free, the select below
	// would otherwise pick randomly between the closed channel and the
	// send, making post-close sends succeed nondeterministically.
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	default:
	}
	select {
	case <-p.closed:
		return ErrClosed
	case <-p.peer.closed:
		return ErrClosed
	case p.send <- m:
		return nil
	}
}

// Recv implements Conn.
func (p *pipeConn) Recv() (Message, error) {
	select {
	case m := <-p.recv:
		return m, nil
	default:
	}
	select {
	case m := <-p.recv:
		return m, nil
	case <-p.closed:
		return Message{}, ErrClosed
	case <-p.peer.closed:
		// Drain messages that were in flight before the peer closed.
		select {
		case m := <-p.recv:
			return m, nil
		default:
			return Message{}, ErrClosed
		}
	}
}

// Close implements Conn.
func (p *pipeConn) Close() error {
	p.mu.Lock()
	defer p.mu.Unlock()
	select {
	case <-p.closed:
		return nil
	default:
		close(p.closed)
		return nil
	}
}
