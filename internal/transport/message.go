// Package transport implements the migration wire protocol: framed messages
// carrying disk blocks, memory pages, bitmaps, CPU state, pull requests, and
// phase-control signals between the source and destination migration
// daemons (the paper's blkd processes plus the xc_linux_save/restore control
// channel, collapsed into one framed stream per direction).
//
// Connection flavours provided: a raw framed stream over any
// io.ReadWriteCloser (TCP in production), an in-process Pipe for tests, a
// Striped bundle fanning data frames across several connections (control
// frames pinned to stream 0 behind broadcast barriers), and decorators for
// byte metering, token-bucket bandwidth shaping, DEFLATE compression, fault
// injection, and per-frame link-latency modelling.
package transport

import (
	"encoding/binary"
	"fmt"
	"io"
)

// MsgType identifies the kind of a protocol message.
type MsgType uint8

// Protocol message types. The numbering is part of the wire format.
const (
	// MsgHello opens a migration: Arg carries the protocol version and the
	// payload a serialized Geometry.
	MsgHello MsgType = iota + 1
	// MsgHelloAck accepts a migration.
	MsgHelloAck
	// MsgIterStart announces a disk pre-copy iteration; Arg is the
	// iteration number (1-based).
	MsgIterStart
	// MsgBlockData carries one disk block; Arg is the block number.
	MsgBlockData
	// MsgIterEnd closes a pre-copy iteration; Arg is the count of blocks sent.
	MsgIterEnd
	// MsgMemPage carries one memory page; Arg is the page number.
	MsgMemPage
	// MsgMemIterStart announces a memory pre-copy iteration; Arg is the
	// iteration number.
	MsgMemIterStart
	// MsgMemIterEnd closes a memory pre-copy iteration.
	MsgMemIterEnd
	// MsgSuspend announces the freeze-and-copy phase: the VM is paused on
	// the source.
	MsgSuspend
	// MsgCPUState carries the opaque CPU register state.
	MsgCPUState
	// MsgBitmap carries the serialized block-bitmap of unsynchronized
	// blocks (freeze-and-copy phase, §IV-A-3).
	MsgBitmap
	// MsgResume tells the destination to resume the VM (post-copy begins).
	MsgResume
	// MsgPullRequest asks the source for a dirty block the destination VM
	// wants to read; Arg is the block number.
	MsgPullRequest
	// MsgPushDone tells the destination the source has pushed every block
	// marked in its bitmap.
	MsgPushDone
	// MsgDone acknowledges full synchronization; the source may shut down
	// (the paper's finite-dependency requirement).
	MsgDone
	// MsgError aborts the migration; the payload is a human-readable cause.
	MsgError
	// MsgResumed notifies the source that the destination VM is running
	// again; the source uses it to bound the measured downtime.
	MsgResumed
	// MsgDelta carries a forwarded write (block number + payload) for the
	// Bradford et al. forward-and-replay baseline; Arg is the block number.
	MsgDelta
	// MsgAnnounce precedes the engine handshake when host daemons talk: the
	// payload names the migrating domain and carries its geometry and vault
	// so the receiver can provision a VBD and VM shell (hostd package).
	MsgAnnounce
	// MsgExtent carries a run of contiguous disk blocks in one frame: Arg
	// packs the start block and block count (ExtentArg/ExtentSplit) and the
	// payload is the concatenated block data. Coalescing extents amortizes
	// the per-frame header and flush cost that makes per-block transfer
	// latency-bound.
	MsgExtent
	// MsgStripeBarrier is a Striped-transport ordering fence: before a
	// control frame crosses a multi-stream connection, one barrier frame is
	// broadcast on every stream. The receiver holds each stream at its
	// barrier until all streams reach it and the control frame has been
	// delivered, so phase boundaries (ITER_END, SUSPEND, RESUME, ...) stay
	// ordered against data frames striped across other streams. Arg is a
	// sanity-check sequence number. Never seen by the engine.
	MsgStripeBarrier
	// MsgStripeHello labels one TCP connection of a striped bundle: Arg is
	// the stream index and the payload a single byte holding the total
	// stream count. Exchanged raw, before any framing decorators, by
	// DialStriped/AcceptStriped. Never seen by the engine.
	MsgStripeHello
	// MsgSessionResume is the first frame of a reconnecting source: Arg is
	// the new session epoch (monotonically increasing per reconnect) and the
	// payload the 16-byte session token negotiated in the original
	// handshake. Sent raw on the fresh connection, before any decorators,
	// so the accepting layer can route it to the interrupted migration.
	MsgSessionResume
	// MsgSessionAck accepts a session resume: Arg echoes the epoch and the
	// payload carries the destination's progress state (which phase it
	// reached, which iterations it has fully received), so both sides agree
	// on exactly which blocks are still owed.
	MsgSessionAck
	// MsgHashAdvert offers a run of blocks by content instead of bytes
	// (negotiated content-addressed dedup): Arg packs the extent like
	// MsgExtent and the payload carries one 16-byte fingerprint per block.
	// The destination answers with MsgHashWant naming the blocks whose
	// content it cannot already produce.
	MsgHashAdvert
	// MsgHashWant answers a MsgHashAdvert: Arg echoes the advert's packed
	// extent and the payload is a bitmask (one bit per advertised block,
	// LSB-first) with set bits meaning "send the literal". Blocks whose bit
	// is clear are owed only a MsgBlockRef.
	MsgHashWant
	// MsgBlockRef materializes a run of blocks by reference: Arg packs the
	// extent like MsgExtent and the payload carries one 16-byte fingerprint
	// per block. The destination writes each block from content it already
	// holds (staged at advert time, resolved from its fingerprint index, or
	// the implicit zero block). Sent only for content the destination
	// declined to want — plus all-zero runs, which need no advert at all.
	MsgBlockRef
	// MsgSwarmHello opens a sidecar swarm-fetch session with a peer host
	// daemon: Arg carries the block size the fingerprints describe and the
	// payload names the migrating domain. The peer echoes the hello to
	// accept (Arg restating the block size) or answers MsgError to refuse.
	// Swarm frames never appear on the migration channel itself; they ride
	// separate destination-to-peer connections (WIRE.md §11).
	MsgSwarmHello
	// MsgSwarmFetch asks a swarm peer to produce block content by
	// fingerprint: Arg is a request sequence number and the payload carries
	// one 16-byte fingerprint per wanted block.
	MsgSwarmFetch
	// MsgSwarmBlock answers a MsgSwarmFetch: Arg echoes the request
	// sequence number and the payload is a hit-bitmask (one bit per
	// requested fingerprint, LSB-first, set meaning "produced") followed by
	// the concatenated content of the produced blocks in fingerprint order.
	// The peer serves only content its index verifies on read, so a stale
	// or corrupt copy degrades to a miss, never to wrong bytes.
	MsgSwarmBlock
	// MsgDeltaSig drives the delta-encoding round trip (negotiated WAN
	// delta transfer, WIRE.md §12). Source → destination with an empty
	// payload it requests the signature of the destination's current
	// content for the extent packed in Arg; destination → source it answers
	// with the marshaled chunk signature. Arg 0 — unreachable for a real
	// extent — is the end-of-pass fence: the destination echoes it after
	// every earlier patch has been applied or refused, bounding the window
	// in which a MsgDeltaPatch refusal can arrive.
	MsgDeltaSig
	// MsgDeltaPatch carries delta-encoded extent content. Source →
	// destination the payload is a COPY/LITERAL op stream (internal/delta
	// patch format) the destination applies against its current content,
	// verifying the patch's embedded strong hash before any byte lands;
	// destination → source an empty payload echoing the extent Arg refuses
	// a patch whose verification failed, and the source re-sends that
	// extent literally before ending the pass — degraded, never wrong.
	MsgDeltaPatch
)

// String implements fmt.Stringer.
func (t MsgType) String() string {
	names := map[MsgType]string{
		MsgHello: "HELLO", MsgHelloAck: "HELLO_ACK",
		MsgIterStart: "ITER_START", MsgBlockData: "BLOCK_DATA", MsgIterEnd: "ITER_END",
		MsgMemPage: "MEM_PAGE", MsgMemIterStart: "MEM_ITER_START", MsgMemIterEnd: "MEM_ITER_END",
		MsgSuspend: "SUSPEND", MsgCPUState: "CPU_STATE", MsgBitmap: "BITMAP",
		MsgResume: "RESUME", MsgPullRequest: "PULL_REQUEST", MsgPushDone: "PUSH_DONE",
		MsgDone: "DONE", MsgError: "ERROR",
		MsgResumed: "RESUMED", MsgDelta: "DELTA", MsgAnnounce: "ANNOUNCE",
		MsgExtent: "EXTENT", MsgStripeBarrier: "STRIPE_BARRIER", MsgStripeHello: "STRIPE_HELLO",
		MsgSessionResume: "SESSION_RESUME", MsgSessionAck: "SESSION_ACK",
		MsgHashAdvert: "HASH_ADVERT", MsgHashWant: "HASH_WANT", MsgBlockRef: "BLOCK_REF",
		MsgSwarmHello: "SWARM_HELLO", MsgSwarmFetch: "SWARM_FETCH", MsgSwarmBlock: "SWARM_BLOCK",
		MsgDeltaSig: "DELTA_SIG", MsgDeltaPatch: "DELTA_PATCH",
	}
	if s, ok := names[t]; ok {
		return s
	}
	return fmt.Sprintf("MsgType(%d)", uint8(t))
}

// Message is one protocol frame. Arg is a type-dependent scalar (block
// number, page number, iteration index, version); Payload is the
// type-dependent body.
type Message struct {
	Type    MsgType
	Arg     uint64
	Payload []byte
}

// frame layout: type(1) | arg(8) | payloadLen(4) | payload.
const headerLen = 1 + 8 + 4

// MaxPayload bounds a frame payload; larger frames indicate corruption.
const MaxPayload = 64 << 20

// FrameSize returns the number of wire bytes the message occupies, the unit
// the "amount of migrated data" metric counts.
func (m Message) FrameSize() int { return headerLen + len(m.Payload) }

// encode appends the wire form of m to buf and returns the result.
func encode(buf []byte, m Message) ([]byte, error) {
	if len(m.Payload) > MaxPayload {
		return nil, fmt.Errorf("transport: payload %d exceeds max %d", len(m.Payload), MaxPayload)
	}
	var hdr [headerLen]byte
	hdr[0] = byte(m.Type)
	binary.LittleEndian.PutUint64(hdr[1:], m.Arg)
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(m.Payload)))
	buf = append(buf, hdr[:]...)
	buf = append(buf, m.Payload...)
	return buf, nil
}

// readMessage decodes one frame from r. The payload is drawn from the
// buffer pool and ownership transfers to the caller (see bufpool.go);
// zero-length payloads allocate nothing at all.
func readMessage(r io.Reader) (Message, error) {
	var hdr [headerLen]byte
	return readMessageHdr(r, &hdr)
}

// readMessageHdr is readMessage with a caller-owned header scratch: the
// array would otherwise escape through the io.Reader interface and cost
// one heap allocation per frame — exactly the per-frame overhead the
// pooled path exists to eliminate.
func readMessageHdr(r io.Reader, hdr *[headerLen]byte) (Message, error) {
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Message{}, err
	}
	m := Message{
		Type: MsgType(hdr[0]),
		Arg:  binary.LittleEndian.Uint64(hdr[1:]),
	}
	n := binary.LittleEndian.Uint32(hdr[9:])
	if n > MaxPayload {
		return Message{}, fmt.Errorf("transport: frame payload %d exceeds max %d", n, MaxPayload)
	}
	if n > 0 {
		m.Payload = GetBuf(int(n))
		if _, err := io.ReadFull(r, m.Payload); err != nil {
			PutBuf(m.Payload)
			return Message{}, fmt.Errorf("transport: short payload: %w", err)
		}
	}
	return m, nil
}

// Geometry is exchanged in MsgHello so both sides agree on the disk and
// memory shape before any data moves.
type Geometry struct {
	BlockSize int
	NumBlocks int
	PageSize  int
	NumPages  int
}

// Validate checks the geometry for internal consistency.
func (g Geometry) Validate() error {
	if g.BlockSize <= 0 || g.NumBlocks < 0 || g.PageSize <= 0 || g.NumPages < 0 {
		return fmt.Errorf("transport: invalid geometry %+v", g)
	}
	return nil
}

// MarshalBinary encodes the geometry for the hello payload.
func (g Geometry) MarshalBinary() ([]byte, error) {
	out := make([]byte, 32)
	binary.LittleEndian.PutUint64(out[0:], uint64(g.BlockSize))
	binary.LittleEndian.PutUint64(out[8:], uint64(g.NumBlocks))
	binary.LittleEndian.PutUint64(out[16:], uint64(g.PageSize))
	binary.LittleEndian.PutUint64(out[24:], uint64(g.NumPages))
	return out, nil
}

// UnmarshalBinary decodes a geometry.
func (g *Geometry) UnmarshalBinary(data []byte) error {
	if len(data) != 32 {
		return fmt.Errorf("transport: geometry payload %d bytes, want 32", len(data))
	}
	g.BlockSize = int(binary.LittleEndian.Uint64(data[0:]))
	g.NumBlocks = int(binary.LittleEndian.Uint64(data[8:]))
	g.PageSize = int(binary.LittleEndian.Uint64(data[16:]))
	g.NumPages = int(binary.LittleEndian.Uint64(data[24:]))
	return g.Validate()
}

// ProtocolVersion is carried in MsgHello.Arg; mismatches abort the migration.
const ProtocolVersion = 1

// HelloAckResume is set in MsgHelloAck.Arg when the destination accepts the
// session token a resumable source appended to its HELLO payload. A zero Arg
// (the seed wire format) declines: the session runs fail-fast.
const HelloAckResume uint64 = 1 << 0

// MaxExtentBlocks bounds the block count of one MsgExtent frame: 2^24-1
// blocks (64 GiB of 4 KiB blocks), far above anything MaxPayload admits, so
// the packing never constrains a legal frame.
const MaxExtentBlocks = 1<<24 - 1

// ExtentArg packs a start block and block count into a MsgExtent Arg: the
// start in the low 40 bits, the count in the next 24.
func ExtentArg(start, count int) uint64 {
	if start < 0 || uint64(start) >= 1<<40 || count < 1 || count > MaxExtentBlocks {
		panic(fmt.Sprintf("transport: extent [%d,+%d) unpackable", start, count))
	}
	return uint64(start) | uint64(count)<<40
}

// ExtentSplit unpacks a MsgExtent Arg into start block and block count.
func ExtentSplit(arg uint64) (start, count int) {
	return int(arg & (1<<40 - 1)), int(arg >> 40)
}
