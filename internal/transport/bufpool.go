package transport

import (
	"sync"
	"sync/atomic"
)

// Pooled payload buffers: the zero-copy discipline for the migration hot
// path. Every frame payload that crosses a connection — extent assembly on
// the source, frame receive on the destination, staging copies inside the
// in-process pipe — draws from one process-wide, size-classed pool instead
// of the garbage collector, so a steady-state migration performs O(1)
// allocations per extent rather than per frame.
//
// Ownership contract (see docs/ARCHITECTURE.md, "Memory discipline"):
//
//   - Send BORROWS the payload: when Send returns, the caller owns the
//     buffer again and may immediately reuse or release it. Every transport
//     flavour copies or fully writes the payload before returning.
//   - Recv TRANSFERS ownership: the payload handed out by Recv belongs to
//     the caller, which SHOULD release it (Message.Release or PutBuf) once
//     the bytes are applied. Releasing is optional for correctness — an
//     unreleased buffer is simply garbage collected — so cold paths and
//     external consumers need no changes.
//   - Release at most once, and never use a payload after releasing it.
//     SetBufPoison turns on a debug mode that scribbles over released
//     buffers so use-after-release corrupts deterministically in tests.
//
// Size classes double from 64 bytes to 16 MiB; larger requests (up to
// MaxPayload) fall through to plain make and are never pooled. PutBuf only
// accepts buffers whose capacity matches a class exactly — anything else
// (sub-slices, foreign buffers) is silently dropped to the GC, which keeps
// a stray reslice from poisoning the class invariant.

const (
	minBufClass = 6  // 64 B: want bitmasks, barriers' neighbours, acks
	maxBufClass = 24 // 16 MiB: far above any default extent
	numBufClass = maxBufClass - minBufClass + 1
)

// bufBox carries a pooled buffer through sync.Pool. Boxes themselves
// recycle through boxPool so a steady-state Get/Put cycle allocates
// nothing (storing a plain []byte in a sync.Pool would heap-allocate the
// slice header on every Put).
type bufBox struct{ b []byte }

var (
	bufPools [numBufClass]sync.Pool
	boxPool  = sync.Pool{New: func() any { return new(bufBox) }}

	bufPoison atomic.Bool
)

// bufClass returns the pool index whose buffers hold at least n bytes, or
// -1 when n is zero or above the largest class.
func bufClass(n int) int {
	if n <= 0 || n > 1<<maxBufClass {
		return -1
	}
	c := minBufClass
	for 1<<c < n {
		c++
	}
	return c - minBufClass
}

// GetBuf returns a buffer of length n, drawn from the pool when a size
// class covers n and freshly allocated otherwise. The buffer's contents
// are unspecified — callers overwrite it before use.
func GetBuf(n int) []byte {
	idx := bufClass(n)
	if idx < 0 {
		if n <= 0 {
			return nil
		}
		return make([]byte, n)
	}
	if v := bufPools[idx].Get(); v != nil {
		box := v.(*bufBox)
		b := box.b
		box.b = nil
		boxPool.Put(box)
		return b[:n]
	}
	return make([]byte, n, 1<<(idx+minBufClass))[:n]
}

// PutBuf returns a buffer obtained from GetBuf (or from a Recv payload) to
// the pool. Buffers whose capacity does not exactly match a size class are
// dropped to the garbage collector, so passing an arbitrary slice is safe
// but pointless. Callers must not touch the buffer afterwards.
func PutBuf(b []byte) {
	c := cap(b)
	idx := bufClass(c)
	if idx < 0 || 1<<(idx+minBufClass) != c {
		return
	}
	b = b[:c]
	if bufPoison.Load() {
		for i := range b {
			b[i] = 0xDB
		}
	}
	box := boxPool.Get().(*bufBox)
	box.b = b
	bufPools[idx].Put(box)
}

// Release returns m's payload to the buffer pool and clears the reference.
// It is the applier-side half of the ownership contract: call it once the
// payload bytes have been fully consumed (written to the device, parsed
// into an owned structure). Safe on messages with nil payloads.
func (m *Message) Release() {
	if m.Payload != nil {
		PutBuf(m.Payload)
		m.Payload = nil
	}
}

// SetBufPoison toggles the pool's use-after-release debug mode: while on,
// every released buffer is overwritten with a poison byte before it is
// recycled, so a retained reference shows up as corrupted data instead of
// a heisenbug. Tests flip this on around full migrations to prove the
// release discipline sound; it is never on in production paths.
func SetBufPoison(on bool) { bufPoison.Store(on) }
