package transport

import (
	"errors"
	"sync"
)

// ErrInjected is the failure a FaultConn injects.
var ErrInjected = errors.New("transport: injected fault")

// FaultKind selects how a scripted fault manifests, at message granularity
// (our Conns exchange whole frames; a byte-level cut shows up to the framing
// layer as one of these shapes).
type FaultKind int

const (
	// FaultCut severs the link: the triggering operation's frame is lost in
	// flight (never delivered), the operation returns ErrInjected, and both
	// directions die — drop-after-N-frames. This is the classic mid-transfer
	// link failure, and what a TCP reset mid-frame looks like above the
	// framing layer.
	FaultCut FaultKind = iota
	// FaultHalfClose kills only the triggering direction — a one-sided
	// close. Armed via AfterSends, every Send fails while Recv keeps
	// delivering; armed via AfterRecvs, every Recv fails while Send keeps
	// working. The surviving direction stays up until the peer tears down.
	FaultHalfClose
	// FaultTruncate delivers the triggering frame with its payload cut to
	// half length, then severs the link: on a send trigger the peer
	// receives the corrupt frame (e.g. an extent whose payload no longer
	// matches its block count); on a recv trigger this side reads it — a
	// frame cut mid-extent.
	FaultTruncate
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultCut:
		return "cut"
	case FaultHalfClose:
		return "half-close"
	case FaultTruncate:
		return "truncate"
	}
	return "fault(?)"
}

// Fault is one scripted failure: it arms after AfterSends successful sends
// or AfterRecvs successful receives (whichever trigger is non-zero; a fault
// may arm both) and fires on the next operation of that kind.
type Fault struct {
	AfterSends int64
	AfterRecvs int64
	Kind       FaultKind
}

// FaultConn wraps a Conn with a deterministic fault script, for testing the
// engine's behaviour when the network dies mid-migration (the failure mode
// behind the paper's availability argument: a migration must either complete,
// resume, or leave both sides able to report a clean error).
//
// Faults are evaluated in script order on every operation; the first fault
// whose trigger has been crossed fires, is consumed, and applies its kind's
// state (send-dead, both-dead). The ordering is deterministic: counters are
// per-direction, checks happen before the operation is delegated, and ties
// between two armed faults resolve to the earlier script entry.
type FaultConn struct {
	inner Conn

	mu       sync.Mutex
	script   []Fault
	sends    int64
	recvs    int64
	sendDead bool
	recvDead bool
	dead     bool
}

// NewFaultConn wraps inner, cutting the link on the send after failSends
// successful sends and on the recv after failRecvs successful recvs (0
// disables either trigger). Kept as the one-shot convenience constructor;
// NewScriptedFaultConn runs richer scripts.
func NewFaultConn(inner Conn, failSends, failRecvs int64) *FaultConn {
	var script []Fault
	if failSends > 0 {
		script = append(script, Fault{AfterSends: failSends, Kind: FaultCut})
	}
	if failRecvs > 0 {
		script = append(script, Fault{AfterRecvs: failRecvs, Kind: FaultCut})
	}
	return NewScriptedFaultConn(inner, script...)
}

// NewScriptedFaultConn wraps inner with an ordered fault script.
func NewScriptedFaultConn(inner Conn, script ...Fault) *FaultConn {
	return &FaultConn{inner: inner, script: append([]Fault(nil), script...)}
}

// fire consumes script index i and applies its state; onSend names the
// direction that tripped it (a half-close kills only that direction).
func (f *FaultConn) fire(i int, onSend bool) FaultKind {
	k := f.script[i].Kind
	f.script = append(f.script[:i:i], f.script[i+1:]...)
	switch k {
	case FaultHalfClose:
		if onSend {
			f.sendDead = true
		} else {
			f.recvDead = true
		}
	default:
		f.dead = true
	}
	return k
}

// nextSendFault reports the first armed send fault, or -1.
func (f *FaultConn) nextSendFault() int {
	for i, ft := range f.script {
		if ft.AfterSends > 0 && f.sends >= ft.AfterSends {
			return i
		}
	}
	return -1
}

// Send implements Conn.
func (f *FaultConn) Send(m Message) error {
	f.mu.Lock()
	if f.dead || f.sendDead {
		f.mu.Unlock()
		return ErrInjected
	}
	i := f.nextSendFault()
	if i < 0 {
		f.sends++
		f.mu.Unlock()
		return f.inner.Send(m)
	}
	kind := f.fire(i, true)
	f.mu.Unlock()
	switch kind {
	case FaultHalfClose:
		return ErrInjected
	case FaultTruncate:
		m.Payload = m.Payload[:len(m.Payload)/2]
		_ = f.inner.Send(m) // best-effort: the mangled frame races the close
		f.inner.Close()
		return ErrInjected
	default: // FaultCut: the frame is lost in flight
		f.inner.Close()
		return ErrInjected
	}
}

// Recv implements Conn.
func (f *FaultConn) Recv() (Message, error) {
	f.mu.Lock()
	if f.dead || f.recvDead {
		f.mu.Unlock()
		return Message{}, ErrInjected
	}
	for i, ft := range f.script {
		if ft.AfterRecvs > 0 && f.recvs >= ft.AfterRecvs {
			kind := f.fire(i, false)
			f.mu.Unlock()
			switch kind {
			case FaultHalfClose:
				return Message{}, ErrInjected // sends stay up
			case FaultTruncate:
				m, err := f.inner.Recv()
				f.inner.Close()
				if err != nil {
					return Message{}, ErrInjected
				}
				m.Payload = m.Payload[:len(m.Payload)/2]
				return m, nil
			default: // FaultCut
				f.inner.Close()
				return Message{}, ErrInjected
			}
		}
	}
	f.recvs++
	f.mu.Unlock()
	return f.inner.Recv()
}

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }

// Injector hands out fault scripts across the successive connections of a
// resumable migration: epoch 0 (the original connection) gets the first
// script, each reconnect the next, and epochs past the end run clean. Tests
// use it to script "fail mid mem-precopy, then fail again during post-copy,
// then let the third attempt finish".
type Injector struct {
	mu      sync.Mutex
	scripts [][]Fault
	next    int
}

// NewInjector builds an injector over per-epoch scripts.
func NewInjector(scripts ...[]Fault) *Injector {
	return &Injector{scripts: scripts}
}

// Wrap decorates the next epoch's connection with its script. Connections
// beyond the scripted epochs are returned unwrapped.
func (in *Injector) Wrap(c Conn) Conn {
	in.mu.Lock()
	defer in.mu.Unlock()
	idx := in.next
	in.next++
	if idx >= len(in.scripts) || len(in.scripts[idx]) == 0 {
		return c
	}
	return NewScriptedFaultConn(c, in.scripts[idx]...)
}

// Epochs reports how many connections the injector has wrapped so far.
func (in *Injector) Epochs() int {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.next
}
