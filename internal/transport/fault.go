package transport

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the failure a FaultConn injects.
var ErrInjected = errors.New("transport: injected fault")

// FaultConn wraps a Conn and fails after a configured number of operations,
// for testing the engine's behaviour when the network dies mid-migration
// (the failure mode behind the paper's availability argument: a migration
// must either complete or leave both sides able to report a clean error).
type FaultConn struct {
	inner Conn
	// FailAfterSends / FailAfterRecvs inject ErrInjected once that many
	// operations have succeeded; 0 disables that trigger.
	failAfterSends int64
	failAfterRecvs int64
	sends          atomic.Int64
	recvs          atomic.Int64
}

// NewFaultConn wraps inner, failing sends after failSends successful sends
// and recvs after failRecvs successful recvs (0 disables either trigger).
func NewFaultConn(inner Conn, failSends, failRecvs int64) *FaultConn {
	return &FaultConn{inner: inner, failAfterSends: failSends, failAfterRecvs: failRecvs}
}

// Send implements Conn.
func (f *FaultConn) Send(m Message) error {
	if f.failAfterSends > 0 && f.sends.Add(1) > f.failAfterSends {
		f.inner.Close() // a dead link kills both directions
		return ErrInjected
	}
	return f.inner.Send(m)
}

// Recv implements Conn.
func (f *FaultConn) Recv() (Message, error) {
	if f.failAfterRecvs > 0 && f.recvs.Add(1) > f.failAfterRecvs {
		f.inner.Close()
		return Message{}, ErrInjected
	}
	return f.inner.Recv()
}

// Close implements Conn.
func (f *FaultConn) Close() error { return f.inner.Close() }
