package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compression markers prefixed to every payload crossing a Compressed conn.
const (
	compressRaw     = 0 // payload follows verbatim
	compressDeflate = 1 // payload is DEFLATE-compressed
)

// Compressed wraps a Conn so payloads are DEFLATE-compressed on the wire,
// the §III-A observation that "compress[ing] the transferred data before
// sending it will show a reduction in total migration time" when the link,
// not the CPU, is the bottleneck. Both endpoints must wrap symmetrically.
//
// Payloads that do not shrink (already-random blocks) are sent raw with a
// one-byte marker, so the worst case costs one byte per message.
type Compressed struct {
	inner Conn
	level int

	mu  sync.Mutex // guards the writer/buffer across concurrent Sends
	buf bytes.Buffer
	fw  *flate.Writer
}

// NewCompressed wraps inner at the given flate level (flate.DefaultCompression
// if 0).
func NewCompressed(inner Conn, level int) (*Compressed, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	c := &Compressed{inner: inner, level: level}
	fw, err := flate.NewWriter(&c.buf, level)
	if err != nil {
		return nil, fmt.Errorf("transport: compression level %d: %w", level, err)
	}
	c.fw = fw
	return c, nil
}

// Send implements Conn.
func (c *Compressed) Send(m Message) error {
	if len(m.Payload) == 0 {
		m.Payload = []byte{compressRaw}
		return c.inner.Send(m)
	}
	c.mu.Lock()
	c.buf.Reset()
	c.buf.WriteByte(compressDeflate)
	c.fw.Reset(&c.buf)
	if _, err := c.fw.Write(m.Payload); err != nil {
		c.mu.Unlock()
		return fmt.Errorf("transport: compress: %w", err)
	}
	if err := c.fw.Close(); err != nil {
		c.mu.Unlock()
		return fmt.Errorf("transport: compress flush: %w", err)
	}
	var out []byte
	if c.buf.Len() < len(m.Payload)+1 {
		out = append(out, c.buf.Bytes()...)
	} else {
		out = make([]byte, 0, len(m.Payload)+1)
		out = append(out, compressRaw)
		out = append(out, m.Payload...)
	}
	c.mu.Unlock()
	m.Payload = out
	return c.inner.Send(m)
}

// Recv implements Conn.
func (c *Compressed) Recv() (Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return m, err
	}
	if len(m.Payload) == 0 {
		return m, fmt.Errorf("transport: compressed frame without marker (%v)", m.Type)
	}
	marker, body := m.Payload[0], m.Payload[1:]
	switch marker {
	case compressRaw:
		if len(body) == 0 {
			m.Payload = nil
		} else {
			m.Payload = body
		}
		return m, nil
	case compressDeflate:
		fr := flate.NewReader(bytes.NewReader(body))
		out, err := io.ReadAll(fr)
		if err != nil {
			return m, fmt.Errorf("transport: decompress %v: %w", m.Type, err)
		}
		if err := fr.Close(); err != nil {
			return m, fmt.Errorf("transport: decompress close: %w", err)
		}
		m.Payload = out
		return m, nil
	default:
		return m, fmt.Errorf("transport: unknown compression marker %d", marker)
	}
}

// Close implements Conn.
func (c *Compressed) Close() error { return c.inner.Close() }
