package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compression markers prefixed to every payload crossing a Compressed conn.
const (
	compressRaw     = 0 // payload follows verbatim
	compressDeflate = 1 // payload is DEFLATE-compressed
)

// Compressed wraps a Conn so payloads are DEFLATE-compressed on the wire,
// the §III-A observation that "compress[ing] the transferred data before
// sending it will show a reduction in total migration time" when the link,
// not the CPU, is the bottleneck. Both endpoints must wrap symmetrically.
//
// Payloads that do not shrink (already-random blocks) are sent raw with a
// one-byte marker, so the worst case costs one byte per message.
type Compressed struct {
	inner Conn
	level int

	// decide, when non-nil, gates compression attempts per payload: a false
	// verdict sends the payload raw (marker byte only). observe, when
	// non-nil, receives each attempt's outcome (raw and wire sizes). Both
	// are policy feedback hooks; the wire format is identical either way.
	decide  func(kind MsgType, size int) bool
	observe func(kind MsgType, rawLen, wireLen int)

	// Each concurrent Send takes a compressor from the pool, so the worker
	// pool's sends deflate different extents in parallel instead of
	// serializing on one shared writer.
	pool sync.Pool // *compressor
}

// compressor is one reusable flate writer + staging buffer.
type compressor struct {
	buf bytes.Buffer
	fw  *flate.Writer
}

// NewCompressed wraps inner at the given flate level (flate.DefaultCompression
// if 0).
func NewCompressed(inner Conn, level int) (*Compressed, error) {
	return NewCompressedPolicy(inner, level, nil, nil)
}

// NewCompressedPolicy wraps inner at the given flate level with per-payload
// policy hooks: decide gates whether a payload is worth attempting to
// compress, observe receives each outcome. Either may be nil.
func NewCompressedPolicy(inner Conn, level int, decide func(kind MsgType, size int) bool, observe func(kind MsgType, rawLen, wireLen int)) (*Compressed, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	// Validate the level eagerly so a bad one fails at construction, not on
	// the first Send from a worker goroutine.
	if _, err := flate.NewWriter(io.Discard, level); err != nil {
		return nil, fmt.Errorf("transport: compression level %d: %w", level, err)
	}
	c := &Compressed{inner: inner, level: level, decide: decide, observe: observe}
	c.pool.New = func() any {
		co := &compressor{}
		co.fw, _ = flate.NewWriter(&co.buf, level)
		return co
	}
	return c, nil
}

// Send implements Conn.
func (c *Compressed) Send(m Message) error {
	if len(m.Payload) == 0 {
		m.Payload = []byte{compressRaw}
		return c.inner.Send(m)
	}
	if c.decide != nil && !c.decide(m.Type, len(m.Payload)) {
		out := make([]byte, 0, len(m.Payload)+1)
		out = append(out, compressRaw)
		out = append(out, m.Payload...)
		m.Payload = out
		return c.inner.Send(m)
	}
	co := c.pool.Get().(*compressor)
	co.buf.Reset()
	co.buf.WriteByte(compressDeflate)
	co.fw.Reset(&co.buf)
	if _, err := co.fw.Write(m.Payload); err != nil {
		c.pool.Put(co)
		return fmt.Errorf("transport: compress: %w", err)
	}
	if err := co.fw.Close(); err != nil {
		c.pool.Put(co)
		return fmt.Errorf("transport: compress flush: %w", err)
	}
	var out []byte
	if co.buf.Len() < len(m.Payload)+1 {
		out = append(out, co.buf.Bytes()...)
	} else {
		out = make([]byte, 0, len(m.Payload)+1)
		out = append(out, compressRaw)
		out = append(out, m.Payload...)
	}
	c.pool.Put(co)
	if c.observe != nil {
		c.observe(m.Type, len(m.Payload), len(out))
	}
	m.Payload = out
	return c.inner.Send(m)
}

// Recv implements Conn.
func (c *Compressed) Recv() (Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return m, err
	}
	if len(m.Payload) == 0 {
		return m, fmt.Errorf("transport: compressed frame without marker (%v)", m.Type)
	}
	marker, body := m.Payload[0], m.Payload[1:]
	switch marker {
	case compressRaw:
		if len(body) == 0 {
			m.Payload = nil
		} else {
			m.Payload = body
		}
		return m, nil
	case compressDeflate:
		fr := flate.NewReader(bytes.NewReader(body))
		out, err := io.ReadAll(fr)
		if err != nil {
			return m, fmt.Errorf("transport: decompress %v: %w", m.Type, err)
		}
		if err := fr.Close(); err != nil {
			return m, fmt.Errorf("transport: decompress close: %w", err)
		}
		m.Payload = out
		return m, nil
	default:
		return m, fmt.Errorf("transport: unknown compression marker %d", marker)
	}
}

// Close implements Conn.
func (c *Compressed) Close() error { return c.inner.Close() }
