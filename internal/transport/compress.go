package transport

import (
	"bytes"
	"compress/flate"
	"fmt"
	"io"
	"sync"
)

// Compression markers prefixed to every payload crossing a Compressed conn.
const (
	compressRaw     = 0 // payload follows verbatim
	compressDeflate = 1 // payload is DEFLATE-compressed
)

// Compressed wraps a Conn so payloads are DEFLATE-compressed on the wire,
// the §III-A observation that "compress[ing] the transferred data before
// sending it will show a reduction in total migration time" when the link,
// not the CPU, is the bottleneck. Both endpoints must wrap symmetrically.
//
// Payloads that do not shrink (already-random blocks) are sent raw with a
// one-byte marker, so the worst case costs one byte per message.
type Compressed struct {
	inner Conn
	level int

	// decide, when non-nil, gates compression attempts per payload: a false
	// verdict sends the payload raw (marker byte only). observe, when
	// non-nil, receives each attempt's outcome (raw and wire sizes). Both
	// are policy feedback hooks; the wire format is identical either way.
	decide  func(kind MsgType, size int) bool
	observe func(kind MsgType, rawLen, wireLen int)

	// Each concurrent Send takes a compressor from the pool, so the worker
	// pool's sends deflate different extents in parallel instead of
	// serializing on one shared writer.
	pool sync.Pool // *compressor

	// Each Recv takes a decompressor from the pool: the flate reader's
	// ~32 KiB window and internal state are reused across payloads instead
	// of being rebuilt per frame.
	dpool sync.Pool // *decompressor
}

// compressor is one reusable flate writer + staging buffer.
type compressor struct {
	buf bytes.Buffer
	fw  *flate.Writer
}

// decompressor is one reusable flate reader + its byte source.
type decompressor struct {
	br *bytes.Reader
	fr io.ReadCloser // flate reader; also a flate.Resetter
}

// rawEmpty is the wire form of an empty payload: a lone raw marker. It is
// shared — Send only ever borrows it, never mutates it.
var rawEmpty = []byte{compressRaw}

// NewCompressed wraps inner at the given flate level (flate.DefaultCompression
// if 0).
func NewCompressed(inner Conn, level int) (*Compressed, error) {
	return NewCompressedPolicy(inner, level, nil, nil)
}

// NewCompressedPolicy wraps inner at the given flate level with per-payload
// policy hooks: decide gates whether a payload is worth attempting to
// compress, observe receives each outcome. Either may be nil.
func NewCompressedPolicy(inner Conn, level int, decide func(kind MsgType, size int) bool, observe func(kind MsgType, rawLen, wireLen int)) (*Compressed, error) {
	if level == 0 {
		level = flate.DefaultCompression
	}
	// Validate the level eagerly so a bad one fails at construction, not on
	// the first Send from a worker goroutine.
	if _, err := flate.NewWriter(io.Discard, level); err != nil {
		return nil, fmt.Errorf("transport: compression level %d: %w", level, err)
	}
	c := &Compressed{inner: inner, level: level, decide: decide, observe: observe}
	c.pool.New = func() any {
		co := &compressor{}
		co.fw, _ = flate.NewWriter(&co.buf, level)
		return co
	}
	c.dpool.New = func() any {
		d := &decompressor{br: bytes.NewReader(nil)}
		d.fr = flate.NewReader(d.br)
		return d
	}
	return c, nil
}

// Send implements Conn. Wire payloads are staged in pooled buffers (or the
// compressor's own staging buffer, held until the inner Send returns —
// legal because Send only borrows its payload), so the compression layer
// adds no steady-state allocations.
func (c *Compressed) Send(m Message) error {
	if len(m.Payload) == 0 {
		m.Payload = rawEmpty
		return c.inner.Send(m)
	}
	if c.decide != nil && !c.decide(m.Type, len(m.Payload)) {
		out := GetBuf(len(m.Payload) + 1)
		out[0] = compressRaw
		copy(out[1:], m.Payload)
		m.Payload = out
		err := c.inner.Send(m)
		PutBuf(out)
		return err
	}
	co := c.pool.Get().(*compressor)
	co.buf.Reset()
	co.buf.WriteByte(compressDeflate)
	co.fw.Reset(&co.buf)
	if _, err := co.fw.Write(m.Payload); err != nil {
		c.pool.Put(co)
		return fmt.Errorf("transport: compress: %w", err)
	}
	if err := co.fw.Close(); err != nil {
		c.pool.Put(co)
		return fmt.Errorf("transport: compress flush: %w", err)
	}
	var out, pooled []byte
	if co.buf.Len() < len(m.Payload)+1 {
		out = co.buf.Bytes()
	} else {
		pooled = GetBuf(len(m.Payload) + 1)
		pooled[0] = compressRaw
		copy(pooled[1:], m.Payload)
		out = pooled
	}
	if c.observe != nil {
		c.observe(m.Type, len(m.Payload), len(out))
	}
	m.Payload = out
	err := c.inner.Send(m)
	c.pool.Put(co)
	if pooled != nil {
		PutBuf(pooled)
	}
	return err
}

// Recv implements Conn.
func (c *Compressed) Recv() (Message, error) {
	m, err := c.inner.Recv()
	if err != nil {
		return m, err
	}
	if len(m.Payload) == 0 {
		return m, fmt.Errorf("transport: compressed frame without marker (%v)", m.Type)
	}
	marker, body := m.Payload[0], m.Payload[1:]
	switch marker {
	case compressRaw:
		if len(body) == 0 {
			m.Release()
		} else {
			// Slide the body over the marker in place: the payload keeps
			// its original capacity, so the buffer stays releasable to its
			// pool class downstream.
			n := copy(m.Payload, body)
			m.Payload = m.Payload[:n]
		}
		return m, nil
	case compressDeflate:
		d := c.dpool.Get().(*decompressor)
		d.br.Reset(body)
		if err := d.fr.(flate.Resetter).Reset(d.br, nil); err != nil {
			return m, fmt.Errorf("transport: decompress reset: %w", err)
		}
		out, err := readAllPooled(d.fr, len(body)*4)
		c.dpool.Put(d)
		if err != nil {
			return m, fmt.Errorf("transport: decompress %v: %w", m.Type, err)
		}
		m.Release() // wire buffer fully consumed
		m.Payload = out
		return m, nil
	default:
		return m, fmt.Errorf("transport: unknown compression marker %d", marker)
	}
}

// readAllPooled reads r to EOF into a pooled buffer sized by hint, growing
// through pool classes as needed. The caller owns the returned buffer.
func readAllPooled(r io.Reader, hint int) ([]byte, error) {
	if hint < 1<<12 {
		hint = 1 << 12
	}
	out := GetBuf(hint)
	out = out[:cap(out)]
	n := 0
	for {
		if n == len(out) {
			grown := GetBuf(2 * len(out))
			grown = grown[:cap(grown)]
			copy(grown, out[:n])
			PutBuf(out)
			out = grown
		}
		k, err := r.Read(out[n:])
		n += k
		if err == io.EOF {
			return out[:n], nil
		}
		if err != nil {
			PutBuf(out)
			return nil, err
		}
	}
}

// Close implements Conn.
func (c *Compressed) Close() error { return c.inner.Close() }
