package transport

import (
	"bytes"
	"io"
	"testing"
)

func TestBufPoolSizing(t *testing.T) {
	cases := []struct{ n, wantCap int }{
		{1, 64}, {64, 64}, {65, 128}, {4096, 4096}, {4097, 8192},
		{256 << 10, 256 << 10}, {16 << 20, 16 << 20},
	}
	for _, c := range cases {
		b := GetBuf(c.n)
		if len(b) != c.n || cap(b) != c.wantCap {
			t.Fatalf("GetBuf(%d) = len %d cap %d, want len %d cap %d", c.n, len(b), cap(b), c.n, c.wantCap)
		}
		PutBuf(b)
	}
	if b := GetBuf(0); b != nil {
		t.Fatalf("GetBuf(0) = %v, want nil", b)
	}
	// Above the largest class: exact allocation, never pooled.
	huge := GetBuf(17 << 20)
	if len(huge) != 17<<20 || cap(huge) != 17<<20 {
		t.Fatalf("oversize GetBuf = len %d cap %d", len(huge), cap(huge))
	}
	PutBuf(huge)             // silently dropped
	PutBuf(nil)              // no-op
	PutBuf([]byte{1}[0:1:1]) // cap 1 matches no class: dropped
}

func TestBufPoolRecycles(t *testing.T) {
	// Not strictly guaranteed by sync.Pool, but with no GC between Put and
	// Get on one goroutine the per-P cache returns the same buffer.
	b1 := GetBuf(1000)
	b1[0] = 42
	PutBuf(b1)
	b2 := GetBuf(500)
	if &b1[0] != &b2[0] {
		t.Skip("sync.Pool did not recycle (GC raced); nothing to assert")
	}
	PutBuf(b2)
}

func TestBufPoisonScribbles(t *testing.T) {
	SetBufPoison(true)
	defer SetBufPoison(false)
	b := GetBuf(128)
	for i := range b {
		b[i] = 7
	}
	PutBuf(b)
	for i := range b {
		if b[i] != 0xDB {
			t.Fatalf("byte %d = %#x after release, want poison 0xDB", i, b[i])
		}
	}
}

func TestMessageRelease(t *testing.T) {
	m := Message{Type: MsgBlockData, Payload: GetBuf(64)}
	m.Release()
	if m.Payload != nil {
		t.Fatal("Release did not clear the payload")
	}
	m.Release() // idempotent on a cleared message
}

// TestControlFrameRecvAllocs pins the zero-length-payload satellite: a
// control-heavy phase (barriers, acks, iteration markers) must decode
// frames without allocating at all, and data frames must allocate nothing
// beyond the pooled payload they hand out.
func TestControlFrameRecvAllocs(t *testing.T) {
	wire, err := encode(nil, Message{Type: MsgIterEnd, Arg: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := bytes.NewReader(nil)
	var hdr [headerLen]byte // the conn's scratch, held across frames like streamConn's
	allocs := testing.AllocsPerRun(200, func() {
		r.Reset(wire)
		m, err := readMessageHdr(r, &hdr)
		if err != nil || m.Type != MsgIterEnd || m.Arg != 7 || m.Payload != nil {
			t.Fatalf("readMessage = %+v, %v", m, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("control-frame receive allocates %.1f/op, want 0", allocs)
	}

	wire, err = encode(nil, Message{Type: MsgBlockData, Arg: 3, Payload: make([]byte, 4096)})
	if err != nil {
		t.Fatal(err)
	}
	allocs = testing.AllocsPerRun(200, func() {
		r.Reset(wire)
		m, err := readMessageHdr(r, &hdr)
		if err != nil {
			t.Fatal(err)
		}
		m.Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled data-frame receive allocates %.1f/op, want 0", allocs)
	}
}

// sinkRWC captures everything written to it.
type sinkRWC struct{ bytes.Buffer }

func (*sinkRWC) Read([]byte) (int, error) { return 0, io.EOF }
func (*sinkRWC) Close() error             { return nil }

// TestVectoredSendMatchesEncode proves the vectored/staged send paths emit
// byte-identical framing to the canonical encoder for every payload shape:
// empty, below the vectored threshold, exactly at it, and far above it.
func TestVectoredSendMatchesEncode(t *testing.T) {
	payload := make([]byte, 1<<16)
	for i := range payload {
		payload[i] = byte(i * 131)
	}
	msgs := []Message{
		{Type: MsgIterStart, Arg: 1},
		{Type: MsgBlockData, Arg: 9, Payload: payload[:1]},
		{Type: MsgExtent, Arg: ExtentArg(4, 2), Payload: payload[:vectoredMin-1]},
		{Type: MsgExtent, Arg: ExtentArg(6, 3), Payload: payload[:vectoredMin]},
		{Type: MsgExtent, Arg: ExtentArg(0, 16), Payload: payload},
		{Type: MsgDone},
	}
	sink := &sinkRWC{}
	conn := NewStream(sink)
	var want []byte
	for _, m := range msgs {
		if err := conn.Send(m); err != nil {
			t.Fatal(err)
		}
		var err error
		if want, err = encode(want, m); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(sink.Bytes(), want) {
		t.Fatalf("vectored send wrote %d bytes differing from canonical encoding (%d bytes)", sink.Len(), len(want))
	}
	// And the round trip through a real reader hands back the same frames.
	rc := NewStream(&replayRWC{Reader: *bytes.NewReader(sink.Bytes())})
	for _, m := range msgs {
		got, err := rc.Recv()
		if err != nil {
			t.Fatal(err)
		}
		if got.Type != m.Type || got.Arg != m.Arg || !bytes.Equal(got.Payload, m.Payload) {
			t.Fatalf("round trip mismatch: got %v arg=%d len=%d, want %v arg=%d len=%d",
				got.Type, got.Arg, len(got.Payload), m.Type, m.Arg, len(m.Payload))
		}
		got.Release()
	}
}

// replayRWC serves a recorded byte stream to Recv.
type replayRWC struct{ bytes.Reader }

func (*replayRWC) Write(p []byte) (int, error) { return len(p), nil }
func (*replayRWC) Close() error                { return nil }
