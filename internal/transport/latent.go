package transport

import (
	"sync"
	"time"
)

// Latent models the per-frame cost of a real migration link: every frame
// occupies the link for a fixed stall on top of whatever the inner Conn
// costs, standing in for the synchronous per-message flush — syscall, NIC
// doorbell, completion — that the paper's blkd pays on every block message.
// Loopback transports hide this cost almost entirely (a loopback flush is
// ~1 µs, a real one tens of µs), which makes per-block transfer look
// artificially competitive in-process.
//
// Concurrent Sends on one Latent serialize through the link occupancy,
// exactly as frames on one ordered stream serialize through its flush;
// wrapping each connection of a Striped bundle in its own Latent lets the
// stalls of different streams overlap, which is the mechanism by which
// striping hides per-frame latency. Recv is passed through untouched.
//
// The accounting is cumulative: a sender is put to sleep only once it is at
// least a scheduler quantum behind the modelled link, so the model stays
// accurate for stalls far below the platform timer granularity.
type Latent struct {
	inner Conn
	stall time.Duration

	mu       sync.Mutex
	nextFree time.Time // when the link has drained all queued frames
}

// latentQuantum is the smallest sleep worth issuing: below this the timer
// granularity would distort the model more than bursting does.
const latentQuantum = time.Millisecond

// NewLatent wraps inner so each Send occupies the link for stall.
func NewLatent(inner Conn, stall time.Duration) *Latent {
	return &Latent{inner: inner, stall: stall}
}

// Send implements Conn.
func (l *Latent) Send(m Message) error {
	l.mu.Lock()
	now := time.Now()
	if l.nextFree.Before(now) {
		l.nextFree = now
	}
	l.nextFree = l.nextFree.Add(l.stall)
	wait := l.nextFree.Sub(now)
	l.mu.Unlock()
	if wait >= latentQuantum {
		time.Sleep(wait)
	}
	return l.inner.Send(m)
}

// Recv implements Conn.
func (l *Latent) Recv() (Message, error) { return l.inner.Recv() }

// Close implements Conn.
func (l *Latent) Close() error { return l.inner.Close() }
