package transport

import (
	"sync"
	"time"
)

// Latent models the per-frame cost of a real migration link: every frame
// occupies the link for a fixed stall on top of whatever the inner Conn
// costs, standing in for the synchronous per-message flush — syscall, NIC
// doorbell, completion — that the paper's blkd pays on every block message.
// Loopback transports hide this cost almost entirely (a loopback flush is
// ~1 µs, a real one tens of µs), which makes per-block transfer look
// artificially competitive in-process.
//
// Concurrent Sends on one Latent serialize through the link occupancy,
// exactly as frames on one ordered stream serialize through its flush;
// wrapping each connection of a Striped bundle in its own Latent lets the
// stalls of different streams overlap, which is the mechanism by which
// striping hides per-frame latency. Recv is passed through untouched.
//
// The accounting is cumulative: a sender is put to sleep only once it is at
// least a scheduler quantum behind the modelled link, so the model stays
// accurate for stalls far below the platform timer granularity.
type Latent struct {
	inner Conn
	stall time.Duration
	bps   int64 // serialization rate in bytes/second (0 = infinite, LAN model)

	mu       sync.Mutex
	nextFree time.Time // when the link has drained all queued frames
}

// latentQuantum is the smallest sleep worth issuing: below this the timer
// granularity would distort the model more than bursting does.
const latentQuantum = time.Millisecond

// NewLatent wraps inner so each Send occupies the link for stall.
func NewLatent(inner Conn, stall time.Duration) *Latent {
	return &Latent{inner: inner, stall: stall}
}

// NewWAN wraps inner in a wide-area link profile: each Send occupies the
// link for stall (the one-way propagation delay — half the RTT, so one
// request/reply round trip costs a full RTT) plus the frame's serialization
// time at bytesPerSec. Asymmetric links are modelled by wrapping each
// direction's sending side in its own NewWAN with that direction's rate —
// Latent only ever delays Send, so the uplink and downlink profiles never
// interfere. bytesPerSec <= 0 keeps the pure per-frame stall of NewLatent.
func NewWAN(inner Conn, stall time.Duration, bytesPerSec int64) *Latent {
	return &Latent{inner: inner, stall: stall, bps: bytesPerSec}
}

// Send implements Conn.
func (l *Latent) Send(m Message) error {
	occupy := l.stall
	if l.bps > 0 {
		occupy += time.Duration(float64(m.FrameSize()) / float64(l.bps) * float64(time.Second))
	}
	l.mu.Lock()
	now := time.Now()
	if l.nextFree.Before(now) {
		l.nextFree = now
	}
	l.nextFree = l.nextFree.Add(occupy)
	wait := l.nextFree.Sub(now)
	l.mu.Unlock()
	if wait >= latentQuantum {
		time.Sleep(wait)
	}
	return l.inner.Send(m)
}

// Recv implements Conn.
func (l *Latent) Recv() (Message, error) { return l.inner.Recv() }

// Close implements Conn.
func (l *Latent) Close() error { return l.inner.Close() }
