package transport

import (
	"crypto/rand"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// DefaultResumeWait is the suggested AcceptResume timeout for daemon
// layers: long enough for a source's full exponential backoff ladder, short
// enough that a permanently dead source releases the destination.
const DefaultResumeWait = 2 * time.Minute

// This file is the transport half of resumable migration: session tokens,
// the raw resume/ack frame exchange that precedes a rebound connection, and
// the error classification that separates retryable link failures from
// protocol errors.

// SessionToken identifies one resumable migration across reconnects. It is
// minted by the source, carried in the extended HELLO payload, and echoed in
// every MsgSessionResume so the accepting layer can route a fresh connection
// to the interrupted session.
type SessionToken [16]byte

// NewSessionToken mints a random token.
func NewSessionToken() (SessionToken, error) {
	var t SessionToken
	if _, err := rand.Read(t[:]); err != nil {
		return t, fmt.Errorf("transport: session token: %w", err)
	}
	return t, nil
}

// TokenFromBytes parses a 16-byte token payload.
func TokenFromBytes(b []byte) (SessionToken, error) {
	var t SessionToken
	if len(b) != len(t) {
		return t, fmt.Errorf("transport: session token %d bytes, want %d", len(b), len(t))
	}
	copy(t[:], b)
	return t, nil
}

// ResumeFrame builds the raw first frame of a reconnecting source.
func ResumeFrame(token SessionToken, epoch uint32) Message {
	return Message{Type: MsgSessionResume, Arg: uint64(epoch), Payload: token[:]}
}

// ParseResume validates a MsgSessionResume frame against the expected token
// and the last seen epoch, returning the frame's epoch.
func ParseResume(m Message, token SessionToken, lastEpoch uint32) (uint32, error) {
	if m.Type != MsgSessionResume {
		return 0, fmt.Errorf("transport: expected SESSION_RESUME, got %v", m.Type)
	}
	got, err := TokenFromBytes(m.Payload)
	if err != nil {
		return 0, err
	}
	if got != token {
		return 0, errors.New("transport: session token mismatch")
	}
	epoch := uint32(m.Arg)
	if epoch <= lastEpoch {
		return 0, fmt.Errorf("transport: stale session epoch %d (have %d)", epoch, lastEpoch)
	}
	return epoch, nil
}

// AcceptResume accepts connections from l until one opens with a valid
// MsgSessionResume for token, returning it with the frame's epoch.
// Non-matching connections are closed and the wait continues — a dest-side
// layer parks here while its engine waits to be rebound. A positive timeout
// bounds the whole wait (via the listener's deadline, when it has one), so
// a source that died for good cannot park the destination forever while
// this loop eats every unrelated connection the listener receives.
func AcceptResume(l net.Listener, token SessionToken, lastEpoch uint32, timeout time.Duration) (Conn, uint32, error) {
	type deadliner interface{ SetDeadline(time.Time) error }
	if d, ok := l.(deadliner); ok && timeout > 0 {
		d.SetDeadline(time.Now().Add(timeout))
		defer d.SetDeadline(time.Time{})
	}
	for {
		conn, err := Accept(l)
		if err != nil {
			return nil, 0, err
		}
		m, err := conn.Recv()
		if err != nil {
			conn.Close()
			continue
		}
		epoch, err := ParseResume(m, token, lastEpoch)
		if err != nil {
			conn.Close()
			continue
		}
		return conn, epoch, nil
	}
}

// Swappable is a Conn whose underlying connection can be replaced after a
// reconnect. A resumable migration builds its decorator stack (meter,
// compression) above one Swappable, so metering and policy state survive the
// rebind while the dead link below is swapped out. The caller must quiesce
// its own send path before Rebind; a racing operation on the old connection
// simply fails and is retried by the resume machinery.
type Swappable struct {
	cur atomicConn
}

// atomicConn is a tiny atomic box for a Conn.
type atomicConn struct {
	mu sync.Mutex
	c  Conn
}

func (a *atomicConn) load() Conn {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.c
}

func (a *atomicConn) store(c Conn) Conn {
	a.mu.Lock()
	defer a.mu.Unlock()
	old := a.c
	a.c = c
	return old
}

// NewSwappable wraps c.
func NewSwappable(c Conn) *Swappable {
	s := &Swappable{}
	s.cur.store(c)
	return s
}

// Rebind replaces the underlying connection, closing the old one.
func (s *Swappable) Rebind(c Conn) {
	if old := s.cur.store(c); old != nil {
		old.Close()
	}
}

// Current returns the live underlying connection.
func (s *Swappable) Current() Conn { return s.cur.load() }

// Send implements Conn.
func (s *Swappable) Send(m Message) error { return s.cur.load().Send(m) }

// Recv implements Conn.
func (s *Swappable) Recv() (Message, error) { return s.cur.load().Recv() }

// Close implements Conn.
func (s *Swappable) Close() error { return s.cur.load().Close() }

// IsConnError reports whether err looks like a connection failure — the
// retryable class a resumable migration survives — as opposed to a protocol
// or device error, which aborts. Injected faults, closed pipes, EOFs, and
// net-layer errors all count.
func IsConnError(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrInjected) || errors.Is(err, ErrClosed) ||
		errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) ||
		errors.Is(err, io.ErrClosedPipe) || errors.Is(err, net.ErrClosed) {
		return true
	}
	var ne net.Error
	if errors.As(err, &ne) {
		return true
	}
	var oe *net.OpError
	return errors.As(err, &oe)
}
