// Package blkback is the block backend driver: the interposition layer
// between a domain's virtual block device frontend and the physical device,
// mirroring Xen's split-driver blkback that the paper modifies (§IV-B).
//
// Two components live here:
//
//   - Backend: the source-side driver. It submits requests to the device and,
//     when tracking is enabled, records the location of every written block
//     in an atomic block-bitmap ("if the blkback intercepts a write request,
//     it will split the requested area into 4K blocks and set corresponding
//     bits in the block-bitmap"). That is ALL it does now: since the Volume
//     redesign the migration engine reads frozen snapshots of the volume
//     (see Volume) instead of reaching through the gate to the raw device,
//     so the write-intercept is pure dirty tracking with no entanglement in
//     how migration data is read.
//   - PostCopyGate: the destination-side driver used during the post-copy
//     phase. It implements the paper's two pseudocode listings from §IV-A-3
//     verbatim: the I/O-intercept algorithm (pending list P, write→mark new
//     bitmap and clear transferred bitmap, read-of-dirty→pull) and the
//     received-block algorithm (drop stale pushes, release pending requests).
package blkback

import (
	"fmt"
	"sync/atomic"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
)

// Stats aggregates the request counters a Backend maintains.
type Stats struct {
	Reads        int64 // read requests submitted
	Writes       int64 // write requests submitted
	TrackedBits  int64 // write-block bits recorded while tracking
	ForeignReqs  int64 // requests from domains other than the tracked one
	RewriteHits  int64 // tracked writes whose bit was already set (locality)
	BytesRead    int64
	BytesWritten int64
}

// Backend wraps a device and tracks writes of one domain into a block-bitmap.
// It is safe for concurrent use: the guest submits I/O from its own
// goroutines while the migration engine swaps the bitmap out per iteration.
type Backend struct {
	dev      blockdev.Device
	domain   int // the migrated VM's domain ID; others pass through untracked
	tracking atomic.Bool
	dirty    *bitmap.Atomic

	reads       atomic.Int64
	writes      atomic.Int64
	trackedBits atomic.Int64
	foreign     atomic.Int64
	rewrites    atomic.Int64
	bytesRead   atomic.Int64
	bytesWrit   atomic.Int64
}

// NewBackend returns a Backend over dev that tracks writes from domain.
func NewBackend(dev blockdev.Device, domain int) *Backend {
	return &Backend{
		dev:    dev,
		domain: domain,
		dirty:  bitmap.NewAtomic(dev.NumBlocks()),
	}
}

// Device returns the wrapped device: the guest's live I/O path, and the
// destination engine's apply target. Source-side migration reads should go
// through Volume snapshots instead.
func (b *Backend) Device() blockdev.Device { return b.dev }

// Volume returns the wrapped device's snapshot capability when it was wired
// with one (hostd backs every domain with a bcache volume). The migration
// engine freezes point-in-time snapshots through it for each pre-copy pass,
// which is what lets this gate stay a pure dirty tracker: consistent read
// views are the volume's job, not the write-intercept's.
func (b *Backend) Volume() (blockdev.Volume, bool) {
	v, ok := b.dev.(blockdev.Volume)
	return v, ok
}

// Domain returns the tracked domain ID.
func (b *Backend) Domain() int { return b.domain }

// StartTracking begins recording written blocks. The migration engine calls
// this right before the first pre-copy iteration.
func (b *Backend) StartTracking() { b.tracking.Store(true) }

// StopTracking stops recording written blocks.
func (b *Backend) StopTracking() { b.tracking.Store(false) }

// Tracking reports whether write tracking is active.
func (b *Backend) Tracking() bool { return b.tracking.Load() }

// Submit performs one I/O request. For reads, req.Data must be a buffer of
// at least one block; for writes it is the payload. Writes from the tracked
// domain are recorded in the dirty bitmap while tracking is enabled.
func (b *Backend) Submit(req blockdev.Request) error {
	switch req.Op {
	case blockdev.Read:
		b.reads.Add(1)
		b.bytesRead.Add(int64(b.dev.BlockSize()))
		if req.Domain != b.domain {
			b.foreign.Add(1)
		}
		return b.dev.ReadBlock(req.Block, req.Data)
	case blockdev.Write:
		b.writes.Add(1)
		b.bytesWrit.Add(int64(b.dev.BlockSize()))
		if req.Domain != b.domain {
			b.foreign.Add(1)
		} else if b.tracking.Load() {
			if b.dirty.Test(req.Block) {
				b.rewrites.Add(1)
			} else {
				b.trackedBits.Add(1)
			}
			b.dirty.Set(req.Block)
		}
		return b.dev.WriteBlock(req.Block, req.Data)
	default:
		return fmt.Errorf("blkback: unknown op %v", req.Op)
	}
}

// SubmitExtent performs a multi-block request described as a byte extent,
// splitting it into block-granular sub-requests the way the real blkback
// splits a scatter-gather ring request. data supplies the write payload (or
// receives read data) and must cover the full extent rounded to blocks.
func (b *Backend) SubmitExtent(op blockdev.Op, ext blockdev.Extent, domain int, data []byte) error {
	lo, hi := ext.Blocks(b.dev.BlockSize())
	if hi > b.dev.NumBlocks() {
		return fmt.Errorf("blkback: extent %+v beyond device end", ext)
	}
	bs := b.dev.BlockSize()
	if len(data) < (hi-lo)*bs {
		return fmt.Errorf("blkback: extent buffer %d < %d", len(data), (hi-lo)*bs)
	}
	for n := lo; n < hi; n++ {
		req := blockdev.Request{Op: op, Block: n, Domain: domain, Data: data[(n-lo)*bs : (n-lo+1)*bs]}
		if err := b.Submit(req); err != nil {
			return err
		}
	}
	return nil
}

// SwapDirty atomically captures and resets the dirty bitmap — the
// per-iteration "blkd reads the block-bitmap from blkback, then it is reset"
// step.
func (b *Backend) SwapDirty() *bitmap.Bitmap { return b.dirty.SwapOut() }

// DirtySnapshot returns the current bitmap without clearing it.
func (b *Backend) DirtySnapshot() *bitmap.Bitmap { return b.dirty.Snapshot() }

// DirtyCount returns the number of currently dirty blocks.
func (b *Backend) DirtyCount() int { return b.dirty.Count() }

// SeedDirty ORs a bitmap into the tracking state. Incremental migration uses
// this to start a migration from a saved bitmap instead of all-set.
func (b *Backend) SeedDirty(bm *bitmap.Bitmap) {
	bm.ForEachSet(func(i int) bool { b.dirty.Set(i); return true })
}

// Stats returns a snapshot of the request counters.
func (b *Backend) Stats() Stats {
	return Stats{
		Reads:        b.reads.Load(),
		Writes:       b.writes.Load(),
		TrackedBits:  b.trackedBits.Load(),
		ForeignReqs:  b.foreign.Load(),
		RewriteHits:  b.rewrites.Load(),
		BytesRead:    b.bytesRead.Load(),
		BytesWritten: b.bytesWrit.Load(),
	}
}
