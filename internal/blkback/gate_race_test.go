package blkback

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/workload"
)

// TestGateScatterRace races a destination scatter-writer pool (concurrent
// ReceiveBlock calls, as the parallel transfer pipeline produces) against
// the resumed guest's reads and writes through the gate. Run under -race.
// Invariants checked: no deadlock, full synchronization, and every block
// ends with either the guest's write (local write supersedes a push) or the
// pushed source copy — never a stale mix.
func TestGateScatterRace(t *testing.T) {
	const blocks = 2048
	const scatterWorkers = 4
	const guestWriters = 2
	const guestReaders = 2

	dev := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	transferred := bitmap.NewAllSet(blocks)
	gate := NewPostCopyGate(dev, 1, transferred, func(int) error { return nil }, clock.NewReal())

	pushData := func(n int, buf []byte) { workload.FillBlock(buf, n, 1) }
	guestData := func(n int, buf []byte) { workload.FillBlock(buf, n+1_000_000, 7) }

	var writtenMu sync.Mutex
	written := make(map[int]bool)

	var wg sync.WaitGroup
	// Scatter pool: every block arrives exactly once, striped across workers
	// in arbitrary interleaving.
	for w := 0; w < scatterWorkers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, blockdev.BlockSize)
			for n := w; n < blocks; n += scatterWorkers {
				pushData(n, buf)
				if err := gate.ReceiveBlock(n, buf); err != nil {
					t.Errorf("receive %d: %v", n, err)
					return
				}
			}
		}(w)
	}
	// Guest writers: local writes racing the pushes.
	for g := 0; g < guestWriters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			buf := make([]byte, blockdev.BlockSize)
			for i := 0; i < 400; i++ {
				n := rng.Intn(blocks)
				guestData(n, buf)
				writtenMu.Lock()
				written[n] = true
				writtenMu.Unlock()
				if err := gate.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: 1, Data: buf}); err != nil {
					t.Errorf("write %d: %v", n, err)
					return
				}
			}
		}(g)
	}
	// Guest readers: reads of still-dirty blocks must stall until released
	// by the racing scatter (or by a local write), then observe valid data.
	for g := 0; g < guestReaders; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + g)))
			buf := make([]byte, blockdev.BlockSize)
			wantPush := make([]byte, blockdev.BlockSize)
			wantLocal := make([]byte, blockdev.BlockSize)
			for i := 0; i < 400; i++ {
				n := rng.Intn(blocks)
				if err := gate.Submit(blockdev.Request{Op: blockdev.Read, Block: n, Domain: 1, Data: buf}); err != nil {
					t.Errorf("read %d: %v", n, err)
					return
				}
				pushData(n, wantPush)
				guestData(n, wantLocal)
				if !bytes.Equal(buf, wantPush) && !bytes.Equal(buf, wantLocal) {
					t.Errorf("read of block %d observed torn or stale data", n)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	if !gate.Synchronized() {
		t.Fatalf("gate not synchronized: %d blocks remain", gate.RemainingDirty())
	}
	// Final contents: guest-written blocks hold the local data (the write
	// cleared the transferred bit, so the later push was dropped as stale);
	// all others hold the pushed copy.
	buf := make([]byte, blockdev.BlockSize)
	want := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n++ {
		if err := dev.ReadBlock(n, buf); err != nil {
			t.Fatal(err)
		}
		if written[n] {
			guestData(n, want)
		} else {
			pushData(n, want)
		}
		if !bytes.Equal(buf, want) {
			t.Fatalf("block %d: wrong final contents (guest-written=%v)", n, written[n])
		}
	}
	st := gate.Stats()
	if st.StalePushes == 0 && len(written) > 0 {
		t.Log("note: no stale pushes observed this run (scheduling-dependent)")
	}
	fresh := gate.FreshBitmap()
	for n := range written {
		if !fresh.Test(n) {
			t.Fatalf("guest write to %d missing from fresh bitmap", n)
		}
	}
}
