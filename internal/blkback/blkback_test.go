package blkback

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
)

const bs = blockdev.BlockSize

func block(fill byte) []byte { return bytes.Repeat([]byte{fill}, bs) }

func TestBackendPassthrough(t *testing.T) {
	dev := blockdev.NewMemDisk(16, bs)
	b := NewBackend(dev, 1)
	if b.Device() != dev || b.Domain() != 1 {
		t.Fatal("accessors wrong")
	}
	if err := b.Submit(blockdev.Request{Op: blockdev.Write, Block: 3, Domain: 1, Data: block(7)}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, bs)
	if err := b.Submit(blockdev.Request{Op: blockdev.Read, Block: 3, Domain: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, block(7)) {
		t.Fatal("read mismatch")
	}
	st := b.Stats()
	if st.Reads != 1 || st.Writes != 1 || st.BytesRead != bs || st.BytesWritten != bs {
		t.Fatalf("stats %+v", st)
	}
}

func TestBackendTracksOnlyWhenEnabled(t *testing.T) {
	b := NewBackend(blockdev.NewMemDisk(16, bs), 1)
	w := func(n int) { b.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: 1, Data: block(1)}) }
	w(0)
	if b.DirtyCount() != 0 {
		t.Fatal("tracked before StartTracking")
	}
	b.StartTracking()
	if !b.Tracking() {
		t.Fatal("Tracking false")
	}
	w(1)
	w(2)
	if b.DirtyCount() != 2 {
		t.Fatalf("DirtyCount = %d", b.DirtyCount())
	}
	b.StopTracking()
	w(3)
	if b.DirtyCount() != 2 {
		t.Fatal("tracked after StopTracking")
	}
}

func TestBackendIgnoresForeignDomains(t *testing.T) {
	b := NewBackend(blockdev.NewMemDisk(16, bs), 1)
	b.StartTracking()
	// Domain0 housekeeping writes must not pollute the migration bitmap.
	b.Submit(blockdev.Request{Op: blockdev.Write, Block: 5, Domain: 0, Data: block(9)})
	if b.DirtyCount() != 0 {
		t.Fatal("foreign write tracked")
	}
	if b.Stats().ForeignReqs != 1 {
		t.Fatalf("ForeignReqs = %d", b.Stats().ForeignReqs)
	}
}

func TestBackendRewriteCounting(t *testing.T) {
	b := NewBackend(blockdev.NewMemDisk(16, bs), 1)
	b.StartTracking()
	w := func(n int) { b.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: 1, Data: block(1)}) }
	w(1)
	w(2)
	w(1) // rewrite
	w(1) // rewrite
	st := b.Stats()
	if st.TrackedBits != 2 || st.RewriteHits != 2 {
		t.Fatalf("TrackedBits=%d RewriteHits=%d", st.TrackedBits, st.RewriteHits)
	}
}

func TestBackendSwapDirty(t *testing.T) {
	b := NewBackend(blockdev.NewMemDisk(16, bs), 1)
	b.StartTracking()
	b.Submit(blockdev.Request{Op: blockdev.Write, Block: 4, Domain: 1, Data: block(1)})
	bm := b.SwapDirty()
	if bm.Count() != 1 || !bm.Test(4) {
		t.Fatal("SwapDirty contents wrong")
	}
	if b.DirtyCount() != 0 {
		t.Fatal("SwapDirty did not reset")
	}
	snap := b.DirtySnapshot()
	if snap.Count() != 0 {
		t.Fatal("snapshot after swap not empty")
	}
}

func TestBackendSeedDirty(t *testing.T) {
	b := NewBackend(blockdev.NewMemDisk(16, bs), 1)
	seed := bitmap.New(16)
	seed.Set(2)
	seed.Set(9)
	b.SeedDirty(seed)
	if b.DirtyCount() != 2 || !b.DirtySnapshot().Test(9) {
		t.Fatal("SeedDirty wrong")
	}
}

func TestBackendSubmitExtent(t *testing.T) {
	b := NewBackend(blockdev.NewMemDisk(16, bs), 1)
	b.StartTracking()
	// write 2.5 blocks starting mid-block: touches blocks 1,2,3
	data := bytes.Repeat([]byte{0xCD}, 3*bs)
	ext := blockdev.Extent{Offset: bs + 100, Length: 2*bs + 100}
	if err := b.SubmitExtent(blockdev.Write, ext, 1, data); err != nil {
		t.Fatal(err)
	}
	bm := b.DirtySnapshot()
	for _, n := range []int{1, 2, 3} {
		if !bm.Test(n) {
			t.Fatalf("block %d not tracked", n)
		}
	}
	if bm.Count() != 3 {
		t.Fatalf("Count = %d", bm.Count())
	}
	// extent past device end rejected
	bad := blockdev.Extent{Offset: 15 * bs, Length: 2 * bs}
	if err := b.SubmitExtent(blockdev.Write, bad, 1, data); err == nil {
		t.Fatal("OOB extent accepted")
	}
	// short buffer rejected
	if err := b.SubmitExtent(blockdev.Write, ext, 1, data[:bs]); err == nil {
		t.Fatal("short buffer accepted")
	}
}

func TestBackendBadOp(t *testing.T) {
	b := NewBackend(blockdev.NewMemDisk(4, bs), 1)
	if err := b.Submit(blockdev.Request{Op: blockdev.Op(9), Block: 0}); err == nil {
		t.Fatal("bad op accepted")
	}
}

// --- PostCopyGate ---

type gateEnv struct {
	dev   *blockdev.MemDisk
	gate  *PostCopyGate
	pulls chan int
}

func newGateEnv(t *testing.T, dirty ...int) *gateEnv {
	t.Helper()
	dev := blockdev.NewMemDisk(32, bs)
	bm := bitmap.New(32)
	for _, d := range dirty {
		bm.Set(d)
	}
	e := &gateEnv{dev: dev, pulls: make(chan int, 64)}
	e.gate = NewPostCopyGate(dev, 1, bm, func(n int) error {
		e.pulls <- n
		return nil
	}, clock.NewReal())
	return e
}

func TestGateCleanReadPassesThrough(t *testing.T) {
	e := newGateEnv(t, 5)
	e.dev.WriteBlock(3, block(0xAA))
	buf := make([]byte, bs)
	if err := e.gate.Submit(blockdev.Request{Op: blockdev.Read, Block: 3, Domain: 1, Data: buf}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, block(0xAA)) {
		t.Fatal("clean read wrong data")
	}
	select {
	case n := <-e.pulls:
		t.Fatalf("unexpected pull of %d", n)
	default:
	}
}

func TestGateDirtyReadPullsAndWaits(t *testing.T) {
	e := newGateEnv(t, 7)
	buf := make([]byte, bs)
	done := make(chan error, 1)
	go func() {
		done <- e.gate.Submit(blockdev.Request{Op: blockdev.Read, Block: 7, Domain: 1, Data: buf})
	}()
	n := <-e.pulls
	if n != 7 {
		t.Fatalf("pulled %d", n)
	}
	select {
	case <-done:
		t.Fatal("read completed before block arrived")
	case <-time.After(20 * time.Millisecond):
	}
	if err := e.gate.ReceiveBlock(7, block(0xBB)); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, block(0xBB)) {
		t.Fatal("read returned stale data")
	}
	st := e.gate.Stats()
	if st.Pulls != 1 || st.PullHits != 1 || st.AppliedBlocks != 1 || st.ReadStallTime <= 0 {
		t.Fatalf("stats %+v", st)
	}
	if !e.gate.Synchronized() {
		t.Fatal("gate not synchronized after last block")
	}
}

func TestGateDuplicateReadsOnePull(t *testing.T) {
	e := newGateEnv(t, 4)
	var wg sync.WaitGroup
	errs := make([]error, 3)
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			buf := make([]byte, bs)
			errs[i] = e.gate.Submit(blockdev.Request{Op: blockdev.Read, Block: 4, Domain: 1, Data: buf})
		}(i)
	}
	<-e.pulls
	// give the other readers time to queue
	time.Sleep(20 * time.Millisecond)
	e.gate.ReceiveBlock(4, block(1))
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("reader %d: %v", i, err)
		}
	}
	st := e.gate.Stats()
	if st.Pulls != 1 {
		t.Fatalf("Pulls = %d, want 1 (deduplicated)", st.Pulls)
	}
	if st.PendingReleases < 2 {
		t.Fatalf("PendingReleases = %d", st.PendingReleases)
	}
}

func TestGateWriteSupersedesPush(t *testing.T) {
	e := newGateEnv(t, 9)
	// VM writes the dirty block: bit cleared, fresh bit set.
	if err := e.gate.Submit(blockdev.Request{Op: blockdev.Write, Block: 9, Domain: 1, Data: block(0xCC)}); err != nil {
		t.Fatal(err)
	}
	if e.gate.NeedsPush(9) {
		t.Fatal("NeedsPush after local write")
	}
	// The source's push of the old content must be dropped.
	if err := e.gate.ReceiveBlock(9, block(0x11)); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, bs)
	e.dev.ReadBlock(9, buf)
	if !bytes.Equal(buf, block(0xCC)) {
		t.Fatal("stale push overwrote local write")
	}
	st := e.gate.Stats()
	if st.StalePushes != 1 || st.WriteOverlaps != 1 {
		t.Fatalf("stats %+v", st)
	}
	if !e.gate.FreshBitmap().Test(9) {
		t.Fatal("fresh bitmap missing local write")
	}
	if !e.gate.Synchronized() {
		t.Fatal("write should have synchronized the block")
	}
}

func TestGateWriteReleasesPendingReaders(t *testing.T) {
	e := newGateEnv(t, 6)
	buf := make([]byte, bs)
	done := make(chan error, 1)
	go func() {
		done <- e.gate.Submit(blockdev.Request{Op: blockdev.Read, Block: 6, Domain: 1, Data: buf})
	}()
	<-e.pulls
	// A local write lands before the pull reply: the reader must be
	// released with the written data rather than deadlock.
	if err := e.gate.Submit(blockdev.Request{Op: blockdev.Write, Block: 6, Domain: 1, Data: block(0xDD)}); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(time.Second):
		t.Fatal("reader deadlocked after superseding write")
	}
	if !bytes.Equal(buf, block(0xDD)) {
		t.Fatal("reader saw stale data")
	}
	// late pull reply is dropped
	e.gate.ReceiveBlock(6, block(0x22))
	e.dev.ReadBlock(6, buf)
	if !bytes.Equal(buf, block(0xDD)) {
		t.Fatal("late pull reply overwrote local write")
	}
}

func TestGateForeignDomainBypasses(t *testing.T) {
	e := newGateEnv(t, 2)
	buf := make([]byte, bs)
	// Domain0 reads a dirty block without pulling: the gate only protects
	// the migrated VM's view (paper line 3-4).
	if err := e.gate.Submit(blockdev.Request{Op: blockdev.Read, Block: 2, Domain: 0, Data: buf}); err != nil {
		t.Fatal(err)
	}
	if e.gate.Stats().ForeignReqs != 1 {
		t.Fatal("foreign not counted")
	}
	select {
	case <-e.pulls:
		t.Fatal("foreign read triggered pull")
	default:
	}
}

func TestGatePushedBlocksDrainPendingOnly(t *testing.T) {
	e := newGateEnv(t, 1, 2, 3)
	// plain pushes with no readers waiting
	for _, n := range []int{1, 2, 3} {
		if err := e.gate.ReceiveBlock(n, block(byte(n))); err != nil {
			t.Fatal(err)
		}
	}
	if !e.gate.Synchronized() || e.gate.RemainingDirty() != 0 {
		t.Fatal("pushes did not synchronize")
	}
	buf := make([]byte, bs)
	e.dev.ReadBlock(2, buf)
	if !bytes.Equal(buf, block(2)) {
		t.Fatal("pushed content wrong")
	}
	// duplicate push of an already-clean block is dropped
	if err := e.gate.ReceiveBlock(2, block(0xFF)); err != nil {
		t.Fatal(err)
	}
	e.dev.ReadBlock(2, buf)
	if !bytes.Equal(buf, block(2)) {
		t.Fatal("duplicate push applied")
	}
}

func TestGateCloseFailsPendingReads(t *testing.T) {
	e := newGateEnv(t, 8)
	done := make(chan error, 1)
	go func() {
		buf := make([]byte, bs)
		done <- e.gate.Submit(blockdev.Request{Op: blockdev.Read, Block: 8, Domain: 1, Data: buf})
	}()
	<-e.pulls
	e.gate.Close()
	e.gate.Close() // idempotent
	if err := <-done; !errors.Is(err, ErrGateClosed) {
		t.Fatalf("pending read after Close: %v", err)
	}
	buf := make([]byte, bs)
	if err := e.gate.Submit(blockdev.Request{Op: blockdev.Read, Block: 8, Domain: 1, Data: buf}); !errors.Is(err, ErrGateClosed) {
		t.Fatalf("new read after Close: %v", err)
	}
}

func TestGateBadOpAndGeometry(t *testing.T) {
	e := newGateEnv(t)
	if err := e.gate.Submit(blockdev.Request{Op: blockdev.Op(7), Block: 0, Domain: 1}); err == nil {
		t.Fatal("bad op accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched bitmap accepted")
		}
	}()
	NewPostCopyGate(blockdev.NewMemDisk(8, bs), 1, bitmap.New(9), nil, clock.NewReal())
}

// TestGateConcurrentStress runs readers, writers, and a pusher concurrently
// and then checks the gate converged with no lost updates: the device ends
// fully synchronized and every read either pulled or passed through.
func TestGateConcurrentStress(t *testing.T) {
	const nblocks = 64
	dev := blockdev.NewMemDisk(nblocks, bs)
	dirty := bitmap.NewAllSet(nblocks)
	pulls := make(chan int, nblocks*4)
	gate := NewPostCopyGate(dev, 1, dirty.Clone(), func(n int) error {
		pulls <- n
		return nil
	}, clock.NewReal())

	// source content: block n filled with n
	source := blockdev.NewMemDisk(nblocks, bs)
	for n := 0; n < nblocks; n++ {
		source.WriteBlock(n, block(byte(n)))
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// pull server (not in wg: it runs until explicitly stopped)
	go func() {
		for {
			select {
			case n := <-pulls:
				buf := make([]byte, bs)
				source.ReadBlock(n, buf)
				gate.ReceiveBlock(n, buf)
			case <-stop:
				return
			}
		}
	}()
	// pusher: pushes all blocks in order
	wg.Add(1)
	go func() {
		defer wg.Done()
		buf := make([]byte, bs)
		for n := 0; n < nblocks; n++ {
			source.ReadBlock(n, buf)
			gate.ReceiveBlock(n, buf)
		}
	}()
	// VM readers
	readErrs := make(chan error, 16)
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			buf := make([]byte, bs)
			for i := 0; i < 32; i++ {
				n := (r*13 + i*7) % nblocks
				if err := gate.Submit(blockdev.Request{Op: blockdev.Read, Block: n, Domain: 1, Data: buf}); err != nil {
					readErrs <- err
					return
				}
			}
		}(r)
	}
	// VM writers
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 16; i++ {
				n := (w*29 + i*11) % nblocks
				if err := gate.Submit(blockdev.Request{Op: blockdev.Write, Block: n, Domain: 1, Data: block(0xF0 + byte(w))}); err != nil {
					readErrs <- err
					return
				}
			}
		}(w)
	}
	waitDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(waitDone)
	}()
	// The pusher alone guarantees convergence in finite time.
	select {
	case <-waitDone:
	case err := <-readErrs:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("stress test did not converge")
	}
	close(stop)
	if !gate.Synchronized() {
		t.Fatalf("gate not synchronized: %d dirty left", gate.RemainingDirty())
	}
}
