package blkback

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
)

// ErrGateClosed is returned for requests submitted after the gate shut down
// (e.g. the migration was aborted while a read waited for its pull).
var ErrGateClosed = errors.New("blkback: post-copy gate closed")

// PullFunc asks the source for block n. It must not block for long; the
// reply arrives later through ReceiveBlock.
type PullFunc func(n int) error

// GateStats counts post-copy gate activity.
type GateStats struct {
	Reads           int64         // read requests from the migrated VM
	Writes          int64         // write requests from the migrated VM
	ForeignReqs     int64         // requests from other domains, passed through
	Pulls           int64         // pull requests sent to the source
	PullHits        int64         // reads that had to wait for a pulled block
	StalePushes     int64         // received blocks dropped because a local write superseded them
	AppliedBlocks   int64         // received blocks written to the local disk
	ReadStallTime   time.Duration // total time reads spent waiting for pulls
	WriteOverlaps   int64         // writes that hit a still-dirty block (cancelled its pull need)
	PendingReleases int64         // queued requests released by received blocks
}

// PostCopyGate is the destination-side interceptor active during the
// post-copy phase. All I/O of the resumed VM flows through Submit; blocks
// arriving from the source (pushed or pulled) flow through ReceiveBlock.
//
// Invariants enforced (paper §IV-A-3):
//
//   - A read returns only up-to-date data: if the block is marked in the
//     transferred bitmap the read waits until the block has been received.
//   - A write to a dirty block clears its transferred bit — the local write
//     supersedes the source copy, so a later push of that block is dropped.
//   - Every write is recorded in the new block-bitmap for incremental
//     migration back.
type PostCopyGate struct {
	dev    blockdev.Device
	domain int
	pull   PullFunc
	clk    clock.Clock

	mu          sync.Mutex
	transferred *bitmap.Bitmap // blocks still inconsistent with the source
	fresh       *bitmap.Atomic // BM_3: new writes on the destination (for IM)
	pending     map[int][]chan error
	pullSent    map[int]bool
	closed      bool

	stats   GateStats
	statsMu sync.Mutex
}

// NewPostCopyGate builds a gate over dev for the migrated domain. transferred
// is the bitmap received in freeze-and-copy (ownership passes to the gate);
// pull sends a pull request to the source; clk times read stalls.
func NewPostCopyGate(dev blockdev.Device, domain int, transferred *bitmap.Bitmap, pull PullFunc, clk clock.Clock) *PostCopyGate {
	if transferred.Len() != dev.NumBlocks() {
		panic(fmt.Sprintf("blkback: bitmap %d bits for %d blocks", transferred.Len(), dev.NumBlocks()))
	}
	return &PostCopyGate{
		dev:         dev,
		domain:      domain,
		pull:        pull,
		clk:         clk,
		transferred: transferred,
		fresh:       bitmap.NewAtomic(dev.NumBlocks()),
		pending:     make(map[int][]chan error),
		pullSent:    make(map[int]bool),
	}
}

// Submit implements the paper's destination intercept algorithm. It blocks
// until the request can be satisfied consistently, which for a read of a
// dirty block means waiting for the pull reply.
func (g *PostCopyGate) Submit(req blockdev.Request) error {
	// Line 3: requests from other domains bypass the gate entirely.
	if req.Domain != g.domain {
		g.statsMu.Lock()
		g.stats.ForeignReqs++
		g.statsMu.Unlock()
		return g.submitPhysical(req)
	}

	switch req.Op {
	case blockdev.Write:
		// Lines 5-10: no pulling needed. Record in the new bitmap, clear
		// the transferred bit (the whole block is overwritten locally, so
		// the source copy is obsolete), submit.
		g.mu.Lock()
		wasDirty := g.transferred.Test(req.Block)
		var waiters []chan error
		if wasDirty {
			g.transferred.Clear(req.Block)
			// Reads queued behind a pull of this block would wait forever:
			// the push/pull reply will now be dropped as stale. The local
			// write makes the block current, so release them after the
			// physical write lands.
			waiters = g.pending[req.Block]
			delete(g.pending, req.Block)
			delete(g.pullSent, req.Block)
		}
		g.fresh.Set(req.Block)
		g.mu.Unlock()
		g.statsMu.Lock()
		g.stats.Writes++
		if wasDirty {
			g.stats.WriteOverlaps++
		}
		g.stats.PendingReleases += int64(len(waiters))
		g.statsMu.Unlock()
		err := g.submitPhysical(req)
		for _, w := range waiters {
			w <- err
		}
		return err

	case blockdev.Read:
		g.mu.Lock()
		if g.closed {
			g.mu.Unlock()
			return ErrGateClosed
		}
		// Line 11: clean block — submit directly.
		if !g.transferred.Test(req.Block) {
			g.mu.Unlock()
			g.statsMu.Lock()
			g.stats.Reads++
			g.statsMu.Unlock()
			return g.submitPhysical(req)
		}
		// Line 13: dirty block — queue the request and pull.
		done := make(chan error, 1)
		g.pending[req.Block] = append(g.pending[req.Block], done)
		needPull := !g.pullSent[req.Block]
		g.pullSent[req.Block] = true
		g.mu.Unlock()

		g.statsMu.Lock()
		g.stats.Reads++
		g.stats.PullHits++
		if needPull {
			g.stats.Pulls++
		}
		g.statsMu.Unlock()

		if needPull {
			if err := g.pull(req.Block); err != nil {
				return fmt.Errorf("blkback: pull block %d: %w", req.Block, err)
			}
		}
		start := g.clk.Now()
		err := <-done
		g.statsMu.Lock()
		g.stats.ReadStallTime += g.clk.Now() - start
		g.statsMu.Unlock()
		if err != nil {
			return err
		}
		return g.submitPhysical(req)

	default:
		return fmt.Errorf("blkback: unknown op %v", req.Op)
	}
}

func (g *PostCopyGate) submitPhysical(req blockdev.Request) error {
	switch req.Op {
	case blockdev.Read:
		return g.dev.ReadBlock(req.Block, req.Data)
	default:
		return g.dev.WriteBlock(req.Block, req.Data)
	}
}

// ReceiveBlock implements the paper's received-block algorithm: stale pushes
// (bit already cleared by a local write) are dropped; otherwise the block is
// applied, the bit cleared, and any pending reads released.
func (g *PostCopyGate) ReceiveBlock(n int, data []byte) error {
	g.mu.Lock()
	if !g.transferred.Test(n) {
		// Lines 2-3: a destination write superseded this block.
		g.mu.Unlock()
		g.statsMu.Lock()
		g.stats.StalePushes++
		g.statsMu.Unlock()
		return nil
	}
	// Line 4-5: apply and mark consistent. The device write happens under
	// the gate lock so a racing VM write cannot be overwritten by stale
	// source data (write order: received-then-local = local wins via its
	// own later WriteBlock; local-then-received is excluded by the bit
	// check above, which the local write cleared under this same lock).
	if err := g.dev.WriteBlock(n, data); err != nil {
		g.mu.Unlock()
		return fmt.Errorf("blkback: apply received block %d: %w", n, err)
	}
	g.transferred.Clear(n)
	waiters := g.pending[n]
	delete(g.pending, n)
	delete(g.pullSent, n)
	g.mu.Unlock()

	g.statsMu.Lock()
	g.stats.AppliedBlocks++
	g.stats.PendingReleases += int64(len(waiters))
	g.statsMu.Unlock()
	// Lines 6-11: release queued requests for this block.
	for _, w := range waiters {
		w <- nil
	}
	return nil
}

// RemainingDirty returns how many blocks are still inconsistent.
func (g *PostCopyGate) RemainingDirty() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.transferred.Count()
}

// Synchronized reports whether every block is consistent with the source.
func (g *PostCopyGate) Synchronized() bool { return g.RemainingDirty() == 0 }

// NeedsPush reports whether block n still needs the source copy, letting the
// source pusher skip blocks the destination has overwritten. (The paper's
// source pushes blindly and the destination drops; exposing this check also
// enables the "skip-stale" ablation.)
func (g *PostCopyGate) NeedsPush(n int) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.transferred.Test(n)
}

// FreshBitmap returns a snapshot of the new-writes bitmap (BM_3), the input
// to a later incremental migration back to the source.
func (g *PostCopyGate) FreshBitmap() *bitmap.Bitmap { return g.fresh.Snapshot() }

// Close aborts the gate: all pending reads fail with ErrGateClosed.
func (g *PostCopyGate) Close() {
	g.mu.Lock()
	if g.closed {
		g.mu.Unlock()
		return
	}
	g.closed = true
	var all []chan error
	for n, ws := range g.pending {
		all = append(all, ws...)
		delete(g.pending, n)
	}
	g.mu.Unlock()
	for _, w := range all {
		w <- ErrGateClosed
	}
}

// Stats returns a snapshot of the gate counters.
func (g *PostCopyGate) Stats() GateStats {
	g.statsMu.Lock()
	defer g.statsMu.Unlock()
	return g.stats
}
