// Benchmarks regenerating every table and figure of the paper's evaluation
// (§VI) plus the design-choice ablations listed in DESIGN.md. Each benchmark
// reports the paper-comparable quantities via b.ReportMetric, so
//
//	go test -bench=. -benchmem
//
// prints rows directly comparable to Tables I-III and Figures 5-6. The
// cmd/bbench tool prints the same data as formatted tables.
package bbmig_test

import (
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"bbmig/internal/bitmap"
	"bbmig/internal/blkback"
	"bbmig/internal/blockdev"
	"bbmig/internal/clock"
	"bbmig/internal/core"
	"bbmig/internal/dedup"
	"bbmig/internal/hostd"
	"bbmig/internal/metrics"
	"bbmig/internal/sim"
	"bbmig/internal/transport"
	"bbmig/internal/vm"
	"bbmig/internal/workload"
)

// --- Table I: TPM results for the three workloads -----------------------

func benchTableI(b *testing.B, kind workload.Kind) {
	b.Helper()
	var last *sim.Result
	for i := 0; i < b.N; i++ {
		p := sim.Defaults(kind)
		p.DwellAfter = time.Minute // Table I doesn't need the IM dwell
		last = sim.RunTPM(p)
	}
	b.ReportMetric(last.Report.TotalTime.Seconds(), "total-s")
	b.ReportMetric(float64(last.Report.Downtime.Milliseconds()), "downtime-ms")
	b.ReportMetric(last.Report.MigratedMB(), "migrated-MB")
	b.ReportMetric(float64(last.Report.DiskIterationCount()), "disk-iters")
}

func BenchmarkTableI_DynamicWebServer(b *testing.B) { benchTableI(b, workload.Web) }
func BenchmarkTableI_LowLatencyServer(b *testing.B) { benchTableI(b, workload.Stream) }
func BenchmarkTableI_DiabolicalServer(b *testing.B) { benchTableI(b, workload.Diabolic) }

// --- Table II: incremental migration vs primary TPM ---------------------

func benchTableII(b *testing.B, kind workload.Kind) {
	b.Helper()
	primary := sim.RunTPM(sim.Defaults(kind))
	b.ResetTimer()
	var im *sim.Result
	for i := 0; i < b.N; i++ {
		im = primary.RunIM()
	}
	b.ReportMetric(im.Report.StorageTime().Seconds(), "im-storage-s")
	b.ReportMetric(im.Report.MigratedMB(), "im-MB")
	b.ReportMetric(primary.Report.MigratedMB(), "primary-MB")
}

func BenchmarkTableII_IM_DynamicWebServer(b *testing.B) { benchTableII(b, workload.Web) }
func BenchmarkTableII_IM_LowLatencyServer(b *testing.B) { benchTableII(b, workload.Stream) }
func BenchmarkTableII_IM_DiabolicalServer(b *testing.B) { benchTableII(b, workload.Diabolic) }

// --- Table III: write-tracking overhead on the real interception path ---

func benchTracking(b *testing.B, tracked bool) {
	b.Helper()
	dev := blockdev.NewMemDisk(1<<16, blockdev.BlockSize)
	be := blkback.NewBackend(dev, 1)
	if tracked {
		be.StartTracking()
	}
	buf := make([]byte, blockdev.BlockSize)
	b.SetBytes(blockdev.BlockSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := be.Submit(blockdev.Request{Op: blockdev.Write, Block: i & (1<<16 - 1), Domain: 1, Data: buf}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTableIII_WriteTrackingOff(b *testing.B) { benchTracking(b, false) }
func BenchmarkTableIII_WriteTrackingOn(b *testing.B)  { benchTracking(b, true) }

// --- Fig. 5: web throughput flat across the migration window ------------

func BenchmarkFig5_WebThroughput(b *testing.B) {
	var r *sim.Result
	for i := 0; i < b.N; i++ {
		r = sim.Fig5(1)
	}
	during := r.WorkloadSeries.Mean(r.MigStart, r.MigEnd)
	after := r.WorkloadSeries.Mean(r.MigEnd+time.Minute, r.MigEnd+10*time.Minute)
	b.ReportMetric((1-during/after)*100, "throughput-drop-%")
}

// --- Fig. 6 + §VI-C-3: Bonnie++ impact, unlimited vs rate-limited -------

func benchFig6(b *testing.B, limited bool) {
	b.Helper()
	var r *sim.Result
	for i := 0; i < b.N; i++ {
		unl, lim := sim.Fig6(1)
		if limited {
			r = lim
		} else {
			r = unl
		}
	}
	free := r.WorkloadSeries.Mean(r.MigEnd+2*time.Minute, r.MigEnd+8*time.Minute)
	during := r.WorkloadSeries.Mean(r.MigStart, r.MigEnd)
	b.ReportMetric((1-during/free)*100, "bonnie-impact-%")
	b.ReportMetric(r.Report.PreCopyTime.Seconds(), "precopy-s")
}

func BenchmarkFig6_Unlimited(b *testing.B)   { benchFig6(b, false) }
func BenchmarkFig6_RateLimited(b *testing.B) { benchFig6(b, true) }

// --- §IV-A-2 write locality ----------------------------------------------

func benchLocality(b *testing.B, kind workload.Kind, horizon time.Duration) {
	b.Helper()
	var st workload.LocalityStats
	for i := 0; i < b.N; i++ {
		g := workload.New(kind, 1<<21, 1)
		h := horizon
		if d, ok := g.(*workload.Diabolical); ok {
			h = d.CycleDuration()
		}
		st = workload.Locality(g, h)
	}
	b.ReportMetric(st.RewriteRatio*100, "rewrite-%")
}

func BenchmarkLocality_KernelBuild(b *testing.B) { benchLocality(b, workload.Kernel, 10*time.Minute) }
func BenchmarkLocality_SPECwebBanking(b *testing.B) {
	benchLocality(b, workload.Web, 30*time.Minute)
}
func BenchmarkLocality_Bonnie(b *testing.B) { benchLocality(b, workload.Diabolic, 0) }

// --- Ablation A1: flat vs layered bitmap on sparse scans -----------------

const ablationBits = 10_001_920 // the 39 070 MB disk's bitmap

func sparseBits() []int {
	bits := make([]int, 0, 2000)
	for i := 0; i < 2000; i++ {
		bits = append(bits, (i*4999)%ablationBits)
	}
	return bits
}

func BenchmarkBitmapScan_FlatSparse(b *testing.B) {
	bm := bitmap.New(ablationBits)
	for _, i := range sparseBits() {
		bm.Set(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bm.ForEachSet(func(int) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBitmapScan_LayeredSparse(b *testing.B) {
	bm := bitmap.NewLayered(ablationBits)
	for _, i := range sparseBits() {
		bm.Set(i)
	}
	b.ReportMetric(float64(bm.SizeBytes()), "bitmap-bytes")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := 0
		bm.ForEachSet(func(int) bool { n++; return true })
		if n == 0 {
			b.Fatal("empty")
		}
	}
}

func BenchmarkBitmapSet_Flat(b *testing.B) {
	bm := bitmap.New(ablationBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Set(i % ablationBits)
	}
}

func BenchmarkBitmapSet_Layered(b *testing.B) {
	bm := bitmap.NewLayered(ablationBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Set(i % ablationBits)
	}
}

func BenchmarkBitmapSet_Atomic(b *testing.B) {
	bm := bitmap.NewAtomic(ablationBits)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Set(i % ablationBits)
	}
}

// --- Ablation A2: bitmap granularity -------------------------------------

func benchGranularity(b *testing.B, unit int64) {
	b.Helper()
	const diskBytes = int64(39070) << 20
	bits := int(diskBytes / unit)
	var bm *bitmap.Bitmap
	for i := 0; i < b.N; i++ {
		bm = bitmap.New(bits)
	}
	b.ReportMetric(float64(bm.SizeBytes())/(1<<20), "bitmap-MiB")
}

func BenchmarkGranularity_512B(b *testing.B) { benchGranularity(b, 512) }
func BenchmarkGranularity_4KiB(b *testing.B) { benchGranularity(b, blockdev.BlockSize) }

// --- Ablation A3: delta forwarding vs block-bitmap (redundancy) ----------

// benchScheme runs one small real migration under a rewrite-heavy workload
// and reports the wire bytes moved.
func benchScheme(b *testing.B, delta bool) {
	b.Helper()
	const blocks = 1024
	var migrated, redundant float64
	for i := 0; i < b.N; i++ {
		srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		cs, cd := transport.NewPipe(64)

		var router *core.Router
		var fwd *core.DeltaForwarder
		if delta {
			fwd = core.NewDeltaForwarder(src.Backend, cs)
			router = core.NewRouter(fwd.Submit)
		} else {
			router = core.NewRouter(src.Backend.Submit)
		}
		stop := make(chan struct{})
		var wg sync.WaitGroup
		wg.Add(1)
		go func() { // rewrite the same 16 blocks continuously
			defer wg.Done()
			buf := make([]byte, blockdev.BlockSize)
			for j := 0; ; j++ {
				select {
				case <-stop:
					return
				default:
				}
				router.Submit(blockdev.Request{Op: blockdev.Write, Block: j % 16, Domain: 1, Data: buf})
				time.Sleep(100 * time.Microsecond)
			}
		}()
		// Let the rewriting workload race the copy for a while before the
		// freeze so both schemes face the same redundancy pressure.
		cfgS := core.Config{OnFreeze: func() {
			time.Sleep(30 * time.Millisecond)
			router.Freeze()
		}}
		done := make(chan int64, 1)
		if delta {
			go func() {
				rep, err := core.MigrateDeltaSource(cfgS, src, cs, fwd)
				if err != nil {
					b.Error(err)
					done <- 0
					return
				}
				done <- rep.MigratedBytes
			}()
			res, err := core.MigrateDeltaDest(core.Config{OnResume: func(g *blkback.PostCopyGate) {
				router.ResumeAt(dst.Backend.Submit)
			}}, dst, cd)
			if err != nil {
				b.Fatal(err)
			}
			migrated = float64(<-done)
			redundant += float64(res.Report.StalePushes)
		} else {
			go func() {
				rep, err := core.MigrateSource(cfgS, src, cs, nil)
				if err != nil {
					b.Error(err)
					done <- 0
					return
				}
				done <- rep.MigratedBytes
			}()
			res, err := core.MigrateDest(core.Config{OnResume: func(g *blkback.PostCopyGate) {
				router.ResumeAt(g.Submit)
			}}, dst, cd)
			if err != nil {
				b.Fatal(err)
			}
			migrated = float64(<-done)
			redundant += float64(res.Report.StalePushes)
		}
		close(stop)
		router.ResumeAt(func(blockdev.Request) error { return nil })
		wg.Wait()
	}
	b.ReportMetric(migrated/(1<<20), "migrated-MiB")
	b.ReportMetric(redundant/float64(b.N), "redundant-records")
}

func BenchmarkDeltaVsBitmap_DeltaForward(b *testing.B) { benchScheme(b, true) }
func BenchmarkDeltaVsBitmap_BlockBitmap(b *testing.B)  { benchScheme(b, false) }

// --- Ablation A4: push+pull vs pure-push post-copy ------------------------

// benchPostCopyPolicy measures how long destination reads of dirty blocks
// stall while the source drains a large dirty set, with and without the
// pull path.
func benchPostCopyPolicy(b *testing.B, pullEnabled bool) {
	b.Helper()
	const blocks = 4096
	var stall time.Duration
	for i := 0; i < b.N; i++ {
		dev := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		dirty := bitmap.NewAllSet(blocks)
		pullCh := make(chan int, blocks)
		pull := func(n int) error {
			if pullEnabled {
				pullCh <- n
			}
			return nil
		}
		gate := blkback.NewPostCopyGate(dev, 1, dirty, pull, clock.NewReal())
		stop := make(chan struct{})
		// source: pushes all blocks in order, serving pulls preferentially,
		// pacing each block to emulate wire time.
		go func() {
			buf := make([]byte, blockdev.BlockSize)
			remaining := bitmap.NewAllSet(blocks)
			for remaining.Any() {
				n := -1
				if pullEnabled {
					select {
					case n = <-pullCh:
						if !remaining.Test(n) {
							continue
						}
					default:
					}
				}
				if n < 0 {
					n = remaining.NextSet(0)
				}
				remaining.Clear(n)
				time.Sleep(20 * time.Microsecond) // wire pacing
				gate.ReceiveBlock(n, buf)
				select {
				case <-stop:
					return
				default:
				}
			}
		}()
		// destination guest: reads blocks from the tail of the push order.
		buf := make([]byte, blockdev.BlockSize)
		for _, n := range []int{blocks - 1, blocks - 100, blocks - 500, blocks / 2} {
			if err := gate.Submit(blockdev.Request{Op: blockdev.Read, Block: n, Domain: 1, Data: buf}); err != nil {
				b.Fatal(err)
			}
		}
		stall += gate.Stats().ReadStallTime
		close(stop)
		gate.Close()
	}
	b.ReportMetric(float64(stall.Microseconds())/float64(b.N)/4, "stall-us-per-read")
}

func BenchmarkPostCopyPolicy_PushPull(b *testing.B) { benchPostCopyPolicy(b, true) }
func BenchmarkPostCopyPolicy_PurePush(b *testing.B) { benchPostCopyPolicy(b, false) }

// --- Engine end-to-end throughput -----------------------------------------

func BenchmarkEngine_MigrateIdle64MiB(b *testing.B) {
	const blocks = 16384
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	for i := 0; i < b.N; i++ {
		srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		cs, cd := transport.NewPipe(256)
		errCh := make(chan error, 1)
		go func() {
			_, err := core.MigrateSource(core.Config{}, src, cs, nil)
			errCh <- err
		}()
		if _, err := core.MigrateDest(core.Config{}, dst, cd); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
	}
}

// --- Parallel transfer: per-block single stream vs striped + coalesced ----

// kernelBuildDisk returns a disk carrying a deterministic kernel-build write
// footprint: the generator's trace applied once, so block contents and
// dirty-set shape match the workload the paper benchmarks.
func kernelBuildDisk(blocks int) *blockdev.MemDisk {
	disk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	gen := workload.New(workload.Kernel, blocks, 1)
	buf := make([]byte, blockdev.BlockSize)
	for i := 0; i < 20000; i++ {
		a := gen.Next()
		if a.Op != blockdev.Write {
			continue
		}
		for n := a.Block; n < a.Block+a.Count && n < blocks; n++ {
			workload.FillBlock(buf, n, 1)
			disk.WriteBlock(n, buf)
		}
	}
	return disk
}

// benchMigrateKernelBuild measures end-to-end engine throughput migrating a
// 64 MiB kernel-build image over loopback TCP under a given transfer shape;
// MB/s comes from b.SetBytes. TCP, not an in-process pipe, so each frame
// pays the real per-message flush and syscall cost that extent coalescing
// amortizes and striping overlaps. The idle source disk is reused across
// iterations (a quiescent migration never mutates it). Both endpoints run
// the same Config; negotiated knobs (Streams, CompressLevel) therefore
// always match.
func benchMigrateKernelBuild(b *testing.B, cfg core.Config) {
	b.Helper()
	const blocks = 16384
	srcDisk := kernelBuildDisk(blocks)
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}

		type destOut struct {
			conn transport.Conn
			err  error
		}
		destCh := make(chan destOut, 1)
		go func() {
			var conn transport.Conn
			var err error
			if cfg.Streams > 1 {
				conn, err = transport.AcceptStriped(l, nil)
			} else {
				conn, err = transport.Accept(l)
			}
			if err == nil {
				_, err = core.MigrateDest(cfg, dst, conn)
			}
			destCh <- destOut{conn, err}
		}()
		var cs transport.Conn
		if cfg.Streams > 1 {
			cs, err = transport.DialStriped(l.Addr().String(), cfg.Streams, nil)
		} else {
			cs, err = transport.Dial(l.Addr().String())
		}
		if err != nil {
			b.Fatal(err)
		}
		if _, err := core.MigrateSource(cfg, src, cs, nil); err != nil {
			b.Fatal(err)
		}
		out := <-destCh
		if out.err != nil {
			b.Fatal(out.err)
		}
		cs.Close()
		if out.conn != nil {
			out.conn.Close()
		}
		l.Close()
	}
}

func BenchmarkMigrateKernelBuildTCP_SingleStreamPerBlock(b *testing.B) {
	benchMigrateKernelBuild(b, core.Config{Streams: 1, MaxExtentBlocks: 1, Workers: 1})
}

func BenchmarkMigrateKernelBuildTCP_Coalesced64(b *testing.B) {
	benchMigrateKernelBuild(b, core.Config{Streams: 1, MaxExtentBlocks: 64, Workers: 1})
}

func BenchmarkMigrateKernelBuildTCP_Striped4Coalesced(b *testing.B) {
	benchMigrateKernelBuild(b, core.Config{Streams: 4, MaxExtentBlocks: 64, Workers: 4})
}

// --- Pooled hot path on real TCP vs the cp floor --------------------------

// The MigrateTCP family pins the zero-copy hot path: the same loopback-TCP
// kernel-build migration as above, in the shapes the pooled-buffer
// discipline targets. Run with -benchmem, allocs/op is the contract — the
// steady state recycles every payload through the transport pool, so the
// per-iteration count stays O(extents), not O(bytes).

// BenchmarkMigrateTCP_Cold is the headline single-stream shape: coalesced
// extents with readahead overlapping device reads and socket writes. Its
// MB/s is the row compared against BenchmarkMigrateTCP_CpBaseline.
func BenchmarkMigrateTCP_Cold(b *testing.B) {
	benchMigrateKernelBuild(b, core.Config{MaxExtentBlocks: 64, Readahead: 4})
}

// BenchmarkMigrateTCP_Striped adds 4-way striping with scatter workers on
// the destination — the pooled buffers cross goroutines and are released at
// the drain barrier.
func BenchmarkMigrateTCP_Striped(b *testing.B) {
	benchMigrateKernelBuild(b, core.Config{Streams: 4, MaxExtentBlocks: 64, Workers: 4})
}

// BenchmarkMigrateTCP_Compressed runs the fastest DEFLATE level through the
// pooled compressor/decompressor pair; throughput is CPU-bound but the
// alloc count must stay flat.
func BenchmarkMigrateTCP_Compressed(b *testing.B) {
	benchMigrateKernelBuild(b, core.Config{MaxExtentBlocks: 64, CompressLevel: 1, Workers: 4})
}

// BenchmarkMigrateTCP_CpBaseline is the wire-speed floor the migration
// engine is chasing: the same 64 MiB image pushed through a raw TCP socket
// in 256 KiB chunks and written block-by-block on the far side — `cp` over
// a socket, no framing, no handshake, no engine. The acceptance bar is
// BenchmarkMigrateTCP_Cold within ~20% of this row's MB/s.
func BenchmarkMigrateTCP_CpBaseline(b *testing.B) {
	const blocks = 16384
	const chunkBlocks = (256 << 10) / blockdev.BlockSize
	srcDisk := kernelBuildDisk(blocks)
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		done := make(chan error, 1)
		go func() {
			c, err := l.Accept()
			if err != nil {
				done <- err
				return
			}
			defer c.Close()
			buf := make([]byte, chunkBlocks*blockdev.BlockSize)
			for n := 0; n < blocks; n += chunkBlocks {
				if _, err := io.ReadFull(c, buf); err != nil {
					done <- err
					return
				}
				for j := 0; j < chunkBlocks; j++ {
					if err := dstDisk.WriteBlock(n+j, buf[j*blockdev.BlockSize:(j+1)*blockdev.BlockSize]); err != nil {
						done <- err
						return
					}
				}
			}
			done <- nil
		}()
		c, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, chunkBlocks*blockdev.BlockSize)
		for n := 0; n < blocks; n += chunkBlocks {
			for j := 0; j < chunkBlocks; j++ {
				if err := srcDisk.ReadBlock(n+j, buf[j*blockdev.BlockSize:(j+1)*blockdev.BlockSize]); err != nil {
					b.Fatal(err)
				}
			}
			if _, err := c.Write(buf); err != nil {
				b.Fatal(err)
			}
		}
		if err := <-done; err != nil {
			b.Fatal(err)
		}
		c.Close()
		l.Close()
	}
}

// benchMigrateModeledLink migrates the kernel-build image over in-process
// pipes wrapped in transport.Latent: every frame pays the per-message flush
// cost of a real link (frameStall), the cost loopback hides. This is the
// configuration the motivation's "latency-bound, not hardware-bound" claim
// is about: per-block single-stream transfer serializes one stall per 4 KiB
// block, while coalescing amortizes the stall over an extent and striping
// overlaps the stalls of different streams.
func benchMigrateModeledLink(b *testing.B, streams, extentBlocks, workers int, newPolicy func() core.Policy) {
	b.Helper()
	const blocks = 16384
	const frameStall = 40 * time.Microsecond // syscall + doorbell + completion
	srcDisk := kernelBuildDisk(blocks)
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		a := make([]transport.Conn, streams)
		bb := make([]transport.Conn, streams)
		for j := range a {
			pa, pb := transport.NewPipe(256)
			a[j], bb[j] = transport.NewLatent(pa, frameStall), transport.NewLatent(pb, frameStall)
		}
		cs, cd := transport.NewStriped(a), transport.NewStriped(bb)
		cfg := core.Config{Streams: streams, MaxExtentBlocks: extentBlocks, Workers: workers}
		// A fresh policy per migration: policies are stateful and must not be
		// shared, and a reused one would warm-start later iterations.
		srcCfg := cfg
		if newPolicy != nil {
			srcCfg.Policy = newPolicy()
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := core.MigrateSource(srcCfg, src, cs, nil)
			errCh <- err
		}()
		if _, err := core.MigrateDest(cfg, dst, cd); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		cs.Close()
		cd.Close()
	}
}

func BenchmarkMigrate_SingleStreamPerBlock(b *testing.B) {
	benchMigrateModeledLink(b, 1, 1, 1, nil)
}

func BenchmarkMigrate_Coalesced64(b *testing.B) {
	benchMigrateModeledLink(b, 1, 64, 1, nil)
}

func BenchmarkMigrate_Striped4Coalesced(b *testing.B) {
	benchMigrateModeledLink(b, 4, 64, 4, nil)
}

// BenchmarkMigrate_AdaptivePolicy starts from the seed configuration
// (1 stream, extent 1) and lets core.AdaptivePolicy discover the extent
// size from the link's observed behavior — the acceptance scenario for the
// policy layer: it must land near the hand-tuned Coalesced64 row without
// anyone picking the constant.
func BenchmarkMigrate_AdaptivePolicy(b *testing.B) {
	benchMigrateModeledLink(b, 1, 1, 1, func() core.Policy { return &core.AdaptivePolicy{} })
}

// --- Content-addressed dedup: clone-fleet transfer on the modeled link ----

// templateCloneDisk builds a template-provisioned clone image: three
// quarters of the disk cycles `distinct` template payloads (the
// golden-image content every clone shares), the last quarter was never
// written.
func templateCloneDisk(blocks, distinct int) *blockdev.MemDisk {
	disk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks*3/4; n++ {
		workload.FillBlock(buf, n%distinct, 11)
		disk.WriteBlock(n, buf)
	}
	return disk
}

// benchMigrateDedup migrates the clone image over the modeled link: the
// per-frame stall of benchMigrateModeledLink plus a token-bucket bandwidth
// cap standing in for the shared evacuation uplink (the resource `bbench
// -exp cluster` shows saturating first). mode selects the arm: literal
// transfer, dedup against a cold (empty-index) destination, or dedup
// against a warm destination whose index already holds a clone sibling's
// disk — the clone-fleet evacuation case the `bbench -exp dedup` sweep
// models at paper scale. On the capped link the byte collapse is the win:
// wire MiB is reported alongside MB/s of guest image moved per wall second.
func benchMigrateDedup(b *testing.B, mode string) {
	b.Helper()
	const blocks = 16384
	const distinct = 512
	const frameStall = 40 * time.Microsecond
	const linkBps = 100e6 // shared-uplink share, ~paper-testbed Gigabit halved
	srcDisk := templateCloneDisk(blocks, distinct)
	// The warm arm's index is built once, outside the timed loop — hostd
	// scans a sibling disk once per process, not once per migration, and
	// sharing the index across iterations is exactly its deployment shape.
	var warmIdx *dedup.Index
	if mode == "warm" {
		sibling := templateCloneDisk(blocks, distinct)
		warmIdx = dedup.NewIndex(blockdev.BlockSize)
		if err := warmIdx.RegisterSource("disk/sibling", sibling); err != nil {
			b.Fatal(err)
		}
		if _, err := warmIdx.ScanSource("disk/sibling"); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	var wire int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		pa, pb := transport.NewPipe(256)
		var cs transport.Conn = transport.NewShaped(
			transport.NewLatent(pa, frameStall),
			clock.NewRateLimiter(clock.NewReal(), linkBps, linkBps/10))
		var cd transport.Conn = transport.NewLatent(pb, frameStall)
		cfg := core.Config{MaxExtentBlocks: 64}
		dcfg := cfg
		switch mode {
		case "cold":
			cfg.Dedup, dcfg.Dedup = true, true
		case "warm":
			cfg.Dedup, dcfg.Dedup = true, true
			dcfg.DedupIndex = warmIdx
			dcfg.DedupName = "disk/clone"
		}
		errCh := make(chan error, 1)
		repCh := make(chan *metrics.Report, 1)
		go func() {
			rep, err := core.MigrateSource(cfg, src, cs, nil)
			repCh <- rep
			errCh <- err
		}()
		if _, err := core.MigrateDest(dcfg, dst, cd); err != nil {
			b.Fatal(err)
		}
		rep := <-repCh
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		wire = rep.MigratedBytes
		cs.Close()
		cd.Close()
	}
	b.ReportMetric(float64(wire)/(1<<20), "wire-MiB")
}

func BenchmarkMigrate_DedupOff(b *testing.B)  { benchMigrateDedup(b, "literal") }
func BenchmarkMigrate_DedupCold(b *testing.B) { benchMigrateDedup(b, "cold") }
func BenchmarkMigrate_DedupWarm(b *testing.B) { benchMigrateDedup(b, "warm") }

// benchMigrateDelta is the WAN return trip of `bbench -exp wan` on the real
// engine: an incremental migration back toward a host that still holds a
// stale copy of the image, where the dwell's divergence is hot-block
// rewrites (a head touched in place, the tail intact). mode selects the
// arm: literal IM ("off"), delta against a cold destination ("coldsig" —
// every extent buys a signature round trip that cannot win, the protocol's
// overhead floor), and delta against the stale-copy holder ("warm" — the
// rewrites travel as COPY/LITERAL patches). Wire MiB is the headline; on a
// WAN uplink the byte collapse is the trip time.
func benchMigrateDelta(b *testing.B, mode string) {
	b.Helper()
	const blocks = 16384
	const hot = 2048       // rewritten during the dwell — 12.5%, inside the sweep's 11-35%
	const rewriteLen = 256 // bytes touched per rewritten block
	const frameStall = 40 * time.Microsecond
	const upBps = 100e6   // asymmetric WAN: uplink carries the patches,
	const downBps = 400e6 // downlink only the signature replies
	baseline := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
	buf := make([]byte, blockdev.BlockSize)
	head := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks; n++ {
		workload.FillBlock(buf, n, 7)
		baseline.WriteBlock(n, buf)
		if n < hot {
			workload.FillBlock(head, n+blocks, 13)
			copy(buf[:rewriteLen], head[:rewriteLen])
		}
		srcDisk.WriteBlock(n, buf)
	}
	b.SetBytes(int64(hot) * blockdev.BlockSize)
	b.ReportAllocs()
	var wire int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		if mode != "coldsig" {
			// The home host retains the pre-dwell image.
			for n := 0; n < blocks; n++ {
				if err := baseline.ReadBlock(n, buf); err != nil {
					b.Fatal(err)
				}
				if err := dstDisk.WriteBlock(n, buf); err != nil {
					b.Fatal(err)
				}
			}
		}
		guest := vm.New("g", 1, 64, 256)
		srcBk := blkback.NewBackend(srcDisk, 1)
		src := core.Host{VM: guest, Backend: srcBk}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		pa, pb := transport.NewPipe(256)
		var cs transport.Conn = transport.NewWAN(pa, frameStall, upBps)
		var cd transport.Conn = transport.NewWAN(pb, frameStall, downBps)
		cfg := core.Config{MaxExtentBlocks: 16, Delta: mode != "off"}
		fresh := bitmap.New(blocks)
		fresh.SetRange(0, hot)
		srcBk.SeedDirty(fresh)
		initial := srcBk.SwapDirty()
		errCh := make(chan error, 1)
		repCh := make(chan *metrics.Report, 1)
		go func() {
			rep, err := core.MigrateSource(cfg, src, cs, initial)
			repCh <- rep
			errCh <- err
		}()
		if _, err := core.MigrateDest(cfg, dst, cd); err != nil {
			b.Fatal(err)
		}
		rep := <-repCh
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		wire = rep.MigratedBytes
		cs.Close()
		cd.Close()
	}
	b.ReportMetric(float64(wire)/(1<<20), "wire-MiB")
}

func BenchmarkMigrate_DeltaOff(b *testing.B)         { benchMigrateDelta(b, "off") }
func BenchmarkMigrate_DeltaColdSig(b *testing.B)     { benchMigrateDelta(b, "coldsig") }
func BenchmarkMigrate_DeltaWarmRewrite(b *testing.B) { benchMigrateDelta(b, "warm") }

// benchMigrateSwarm is the multi-source arm of the clone-fleet evacuation:
// same clone image, same capped source uplink as benchMigrateDedup, but the
// destination is cold (empty index — the DedupCold case, where single-source
// dedup can only elide zeros) and a peer machine hosting a clone sibling
// serves the shared template content over a sidecar swarm session on an
// uncapped loopback link. The want-set drains through the peer instead of
// the throttled source, so the capped-uplink wall-clock collapses toward the
// DedupWarm row without the destination holding anything in advance.
func benchMigrateSwarm(b *testing.B) {
	b.Helper()
	const blocks = 16384
	const distinct = 512
	const frameStall = 40 * time.Microsecond
	const linkBps = 100e6
	srcDisk := templateCloneDisk(blocks, distinct)
	// The warm peer: a machine hosting a clone sibling of the migrating
	// image. Its index is scanned once per process inside the first
	// ServeSwarm (hostd's scan-once discipline), exactly its deployment
	// shape.
	peer := hostd.NewMachine("P")
	sibling, err := peer.CreateDomain("sibling", blocks, 64, workload.Web, 1, false)
	if err != nil {
		b.Fatal(err)
	}
	buf := make([]byte, blockdev.BlockSize)
	for n := 0; n < blocks*3/4; n++ {
		workload.FillBlock(buf, n%distinct, 11)
		sibling.Disk().WriteBlock(n, buf)
	}
	b.SetBytes(int64(blocks) * blockdev.BlockSize)
	b.ReportAllocs()
	var wire int64
	var swarmBlocks int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		go func() { _ = peer.ServeSwarm(l, nil) }()
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		pa, pb := transport.NewPipe(256)
		var cs transport.Conn = transport.NewShaped(
			transport.NewLatent(pa, frameStall),
			clock.NewRateLimiter(clock.NewReal(), linkBps, linkBps/10))
		var cd transport.Conn = transport.NewLatent(pb, frameStall)
		cfg := core.Config{MaxExtentBlocks: 64, Dedup: true}
		dcfg := cfg
		dcfg.Swarm = true
		dcfg.SwarmPeers = []string{l.Addr().String()}
		errCh := make(chan error, 1)
		repCh := make(chan *metrics.Report, 1)
		go func() {
			rep, err := core.MigrateSource(cfg, src, cs, nil)
			repCh <- rep
			errCh <- err
		}()
		res, err := core.MigrateDest(dcfg, dst, cd)
		if err != nil {
			b.Fatal(err)
		}
		rep := <-repCh
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		wire = rep.MigratedBytes
		swarmBlocks = res.Report.SwarmBlocks
		cs.Close()
		cd.Close()
		l.Close()
	}
	if swarmBlocks == 0 {
		b.Fatal("no blocks arrived from the swarm peer")
	}
	b.ReportMetric(float64(wire)/(1<<20), "wire-MiB")
	b.ReportMetric(float64(swarmBlocks), "swarm-blocks")
}

func BenchmarkMigrate_SwarmColdDest(b *testing.B) { benchMigrateSwarm(b) }

// --- Extension benches: compression, vault, traces, host daemon ----------

// benchCompression migrates a zero-heavy disk with and without stream
// compression, reporting wire bytes (§III-A's "compress the transferred
// data" observation).
func benchCompression(b *testing.B, compressed bool) {
	b.Helper()
	const blocks = 4096
	var wire float64
	for i := 0; i < b.N; i++ {
		srcDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		buf := make([]byte, blockdev.BlockSize)
		for n := 0; n < blocks; n += 2 {
			srcDisk.WriteBlock(n, buf) // zero-filled: maximally compressible
		}
		dstDisk := blockdev.NewMemDisk(blocks, blockdev.BlockSize)
		guest := vm.New("g", 1, 64, 256)
		src := core.Host{VM: guest, Backend: blkback.NewBackend(srcDisk, 1)}
		dst := core.Host{VM: vm.NewDestination(guest), Backend: blkback.NewBackend(dstDisk, 1)}
		rawS, rawD := transport.NewPipe(256)
		meter := transport.NewMeter(rawS)
		var cs, cd transport.Conn = meter, rawD
		if compressed {
			var err error
			cs, err = transport.NewCompressed(meter, 6)
			if err != nil {
				b.Fatal(err)
			}
			cd, err = transport.NewCompressed(rawD, 6)
			if err != nil {
				b.Fatal(err)
			}
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := core.MigrateSource(core.Config{}, src, cs, nil)
			errCh <- err
		}()
		if _, err := core.MigrateDest(core.Config{}, dst, cd); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		wire = float64(meter.BytesSent())
	}
	b.ReportMetric(wire/(1<<20), "wire-MiB")
}

func BenchmarkCompression_Off(b *testing.B) { benchCompression(b, false) }
func BenchmarkCompression_On(b *testing.B)  { benchCompression(b, true) }

func BenchmarkVaultRecordWrite(b *testing.B) {
	v := core.NewVault(ablationBits)
	for _, p := range []string{"A", "B", "C", "D"} {
		v.MarkSynced(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n := i % ablationBits
		v.RecordWriteRange(n, n+1)
	}
}

func BenchmarkVaultMarshal(b *testing.B) {
	v := core.NewVault(ablationBits)
	v.MarkSynced("A")
	v.MarkSynced("B")
	bm := bitmap.New(ablationBits)
	bm.SetRange(0, 200000)
	v.RecordWrites(bm)
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := v.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(size)/(1<<20), "vault-MiB")
}

func BenchmarkTraceRecord(b *testing.B) {
	gen := workload.New(workload.Web, 1<<21, 1)
	var sink countingWriter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen.Reset()
		sink = 0
		if _, err := workload.Record(gen, 10000, &sink, 1<<21); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(sink))
}

type countingWriter int64

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// BenchmarkHostdHop measures a full daemon-to-daemon migration of a small
// quiescent domain over loopback TCP, vault hand-off included.
func BenchmarkHostdHop(b *testing.B) {
	for i := 0; i < b.N; i++ {
		A := hostd.NewMachine("A")
		B := hostd.NewMachine("B")
		if _, err := A.CreateDomain("g", 1024, 64, workload.Web, 1, false); err != nil {
			b.Fatal(err)
		}
		l, err := transport.Listen("127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		errCh := make(chan error, 1)
		go func() {
			_, err := B.ServeOne(l, core.Config{})
			errCh <- err
		}()
		if _, err := A.MigrateOut("g", "B", l.Addr().String(), core.Config{}); err != nil {
			b.Fatal(err)
		}
		if err := <-errCh; err != nil {
			b.Fatal(err)
		}
		l.Close()
	}
}
